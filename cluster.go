package vsmartjoin

import (
	"context"
	"errors"
	"time"

	"vsmartjoin/internal/cluster"
)

// ErrClusterUnavailable tags Cluster errors caused by unreachable or
// failing nodes — a partition with no live replica, a write that
// missed its quorum — as opposed to invalid requests. Check with
// errors.Is.
var ErrClusterUnavailable = cluster.ErrUnavailable

// ClusterOptions configures NewCluster.
type ClusterOptions struct {
	// Nodes is the topology: Nodes[p] lists the base URLs of partition
	// p's replica daemons (e.g. "http://10.0.0.7:8321"; a URL without a
	// scheme gets "http://"). Every replica of a partition holds the
	// same entities; different partitions hold disjoint entity sets,
	// carved by a hash of the entity name (see PartitionOfEntity).
	Nodes [][]string

	// Timeout bounds every single node request (default 5s).
	Timeout time.Duration

	// HedgeAfter is how long a per-partition query attempt may run
	// before the same query is hedged to another replica (default
	// 100ms; negative disables hedging).
	HedgeAfter time.Duration

	// HealthEvery is the background node-health polling cadence
	// (default 2s; negative disables the loop).
	HealthEvery time.Duration

	// RepairEvery is the background anti-entropy cadence re-driving
	// writes that missed replicas (default 5s; negative disables the
	// loop — repairs then run only via Repair).
	RepairEvery time.Duration
}

// Cluster is a client for a multi-node vsmartjoind deployment: it
// mirrors Index's Add/Remove/Query surface, but routes every call over
// HTTP to a grid of partitioned, replicated daemon nodes. Writes go to
// the entity's owner partition and succeed at majority quorum; queries
// scatter to one replica per partition and merge exactly, so results
// are byte-identical to a single Index holding every entity. The
// router itself is stateless — any number of Cluster clients (and
// vsmartjoind -cluster router daemons) may front the same nodes.
// See internal/cluster for the full design.
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster validates the topology and returns a router. No network
// calls happen here; nodes still booting are discovered by the health
// loop and by traffic.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if len(opts.Nodes) == 0 {
		return nil, errors.New("vsmartjoin: cluster needs at least one partition of nodes")
	}
	inner, err := cluster.New(cluster.Config{
		Partitions:  opts.Nodes,
		Timeout:     opts.Timeout,
		HedgeAfter:  opts.HedgeAfter,
		HealthEvery: opts.HealthEvery,
		RepairEvery: opts.RepairEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// Close stops the router's background health and repair loops. The
// nodes are independent daemons and are not touched.
func (c *Cluster) Close() { c.inner.Close() }

// PartitionOfEntity reports which partition of an n-partition cluster
// owns an entity name — the routing function writes follow and
// BuildClusterFiles carves bulk-built corpora with.
func PartitionOfEntity(entity string, n int) int { return cluster.PartitionOf(entity, n) }

// Add upserts an entity with its element multiplicities, replacing any
// previous entity of the same name, on every replica of its owner
// partition. It succeeds once a majority of replicas acknowledged the
// write; replicas that missed it are re-driven by the anti-entropy
// pass. An error means the write is NOT guaranteed applied — though,
// as in any quorum system, a minority of replicas may still hold it,
// and repair completes it rather than undoing it.
func (c *Cluster) Add(entity string, counts map[string]uint32) error {
	return c.AddContext(context.Background(), entity, counts)
}

// AddContext is Add carrying a context: trace values (WithRequestID)
// propagate onto every node request. Cancellation does not abort the
// write — quorum bookkeeping must outlive an impatient caller.
func (c *Cluster) AddContext(ctx context.Context, entity string, counts map[string]uint32) error {
	return c.inner.Add(ctx, entity, counts)
}

// Remove deletes an entity by name at majority quorum, reporting
// whether any acknowledging replica still had it.
func (c *Cluster) Remove(entity string) (bool, error) {
	return c.RemoveContext(context.Background(), entity)
}

// RemoveContext is Remove carrying a context, with AddContext's
// trace-propagation and cancellation semantics.
func (c *Cluster) RemoveContext(ctx context.Context, entity string) (bool, error) {
	return c.inner.Remove(ctx, entity)
}

// BulkMutation is one mutation of a Cluster.Bulk batch: an upsert
// (Remove false; Elements is the entity's full new multiset) or a
// removal (Remove true; Elements ignored).
type BulkMutation struct {
	Remove   bool
	Entity   string
	Elements map[string]uint32
}

// Bulk applies an ordered batch of mutations with one quorum write per
// touched partition: the batch is grouped by owner partition (order
// preserved; mutations of one entity always share a partition, so
// per-entity order survives) and each partition's replicas receive
// their group as a single batched request — under ingest storms this
// replaces a round trip and a per-node WAL commit per mutation with
// one per partition group. Each group succeeds or fails at majority
// quorum independently; the returned error joins the groups that
// missed quorum, and Add's error semantics apply per group (not
// guaranteed applied, never undone — repair completes it).
func (c *Cluster) Bulk(muts []BulkMutation) error {
	return c.BulkContext(context.Background(), muts)
}

// BulkContext is Bulk carrying a context, with AddContext's
// trace-propagation and cancellation semantics.
func (c *Cluster) BulkContext(ctx context.Context, muts []BulkMutation) error {
	ops := make([]cluster.BulkOp, len(muts))
	for i, m := range muts {
		if m.Remove {
			ops[i] = cluster.BulkOp{Op: "remove", Entity: m.Entity}
		} else {
			ops[i] = cluster.BulkOp{Op: "add", Entity: m.Entity, Elements: m.Elements}
		}
	}
	return c.inner.Bulk(ctx, ops)
}

// AddBatch upserts a batch of entities via Bulk — the batched
// counterpart of calling Add per entry.
func (c *Cluster) AddBatch(entries []BatchEntry) error {
	return c.AddBatchContext(context.Background(), entries)
}

// AddBatchContext is AddBatch carrying a context, with AddContext's
// trace-propagation and cancellation semantics.
func (c *Cluster) AddBatchContext(ctx context.Context, entries []BatchEntry) error {
	ops := make([]cluster.BulkOp, len(entries))
	for i, e := range entries {
		ops[i] = cluster.BulkOp{Op: "add", Entity: e.Entity, Elements: e.Elements}
	}
	return c.inner.Bulk(ctx, ops)
}

// QueryThreshold returns every entity in the cluster whose similarity
// to the query multiset is at least t, in the canonical order
// (decreasing similarity, entity name ascending on ties) — exactly the
// answer a single Index over the same entities gives.
func (c *Cluster) QueryThreshold(counts map[string]uint32, t float64) ([]Match, error) {
	return c.QueryThresholdContext(context.Background(), counts, t)
}

// QueryThresholdContext is QueryThreshold carrying a context:
// cancelling it reels in the scatter, and trace values (WithRequestID)
// propagate onto every node request.
func (c *Cluster) QueryThresholdContext(ctx context.Context, counts map[string]uint32, t float64) ([]Match, error) {
	return fromClusterMatches(c.inner.QueryThreshold(ctx, counts, t))
}

// QueryTopK returns the k most similar entities across the whole
// cluster, best first under the canonical order.
func (c *Cluster) QueryTopK(counts map[string]uint32, k int) ([]Match, error) {
	return c.QueryTopKContext(context.Background(), counts, k)
}

// QueryTopKContext is QueryTopK carrying a context, with
// QueryThresholdContext's cancellation and trace semantics.
func (c *Cluster) QueryTopKContext(ctx context.Context, counts map[string]uint32, k int) ([]Match, error) {
	return fromClusterMatches(c.inner.QueryTopK(ctx, counts, k))
}

// QueryEntity runs QueryThreshold with an indexed entity as the query;
// the entity itself is excluded from the results.
func (c *Cluster) QueryEntity(entity string, t float64) ([]Match, error) {
	return c.QueryEntityContext(context.Background(), entity, t)
}

// QueryEntityContext is QueryEntity carrying a context, with
// QueryThresholdContext's cancellation and trace semantics.
func (c *Cluster) QueryEntityContext(ctx context.Context, entity string, t float64) ([]Match, error) {
	return fromClusterMatches(c.inner.QueryEntity(ctx, entity, t))
}

// QueryKNN returns the k nearest entities across the whole cluster
// under the distance 1 − similarity, nearest first under the canonical
// order (distance ascending, entity name ascending on ties) — exactly
// the answer a single Index over the same entities gives, including
// the non-overlapping tail at distance exactly 1.
func (c *Cluster) QueryKNN(counts map[string]uint32, k int) ([]Neighbor, error) {
	return c.QueryKNNContext(context.Background(), counts, k)
}

// QueryKNNContext is QueryKNN carrying a context, with
// QueryThresholdContext's cancellation and trace semantics.
func (c *Cluster) QueryKNNContext(ctx context.Context, counts map[string]uint32, k int) ([]Neighbor, error) {
	return fromClusterNeighbors(c.inner.QueryKNN(ctx, counts, k))
}

// QueryKNNEntity runs QueryKNN with an indexed entity as the query;
// the entity itself is excluded from its own neighbor list.
func (c *Cluster) QueryKNNEntity(entity string, k int) ([]Neighbor, error) {
	return c.QueryKNNEntityContext(context.Background(), entity, k)
}

// QueryKNNEntityContext is QueryKNNEntity carrying a context, with
// QueryThresholdContext's cancellation and trace semantics.
func (c *Cluster) QueryKNNEntityContext(ctx context.Context, entity string, k int) ([]Neighbor, error) {
	return fromClusterNeighbors(c.inner.QueryKNNEntity(ctx, entity, k))
}

// WithRequestID returns a context carrying a request ID that the
// cluster client attaches to every node request as the
// X-Vsmart-Request-Id header — how the HTTP router makes one logical
// query greppable across its own and every node's logs.
func WithRequestID(ctx context.Context, id string) context.Context {
	return cluster.WithRequestID(ctx, id)
}

// Snapshot asks every node to cut a durable snapshot (nodes running
// without a data dir refuse). It is an operational convenience, not a
// cluster-wide consistency point.
func (c *Cluster) Snapshot() error { return c.inner.Snapshot() }

// CheckHealth polls every node's readiness endpoint once and updates
// the health table queries prefer replicas by. The background health
// loop does the same on its cadence.
func (c *Cluster) CheckHealth() { c.inner.CheckNow(context.Background()) }

// Repair runs one anti-entropy pass now: every node with pending
// missed writes gets them re-driven as a batch. The background repair
// loop does the same on its cadence.
func (c *Cluster) Repair() { c.inner.RepairNow(context.Background()) }

// PendingRepairs reports the number of missed writes queued for
// re-driving — zero once every replica has converged.
func (c *Cluster) PendingRepairs() int { return c.inner.PendingRepairs() }

// Ready reports whether every partition can answer queries (one
// healthy replica) and accept writes (a healthy majority), from the
// router's current health table.
func (c *Cluster) Ready() (queries, writes bool) { return c.inner.Ready() }

// ClusterNodeStatus is one node's row in ClusterStats: its address and
// partition, the router's latest health observation, and the readiness
// counters (generation, entities, mutations, shards) last read from
// the node — the signals that expose a stale replica.
type ClusterNodeStatus struct {
	Addr          string    `json:"addr"`
	Partition     int       `json:"partition"`
	Healthy       bool      `json:"healthy"`
	LastError     string    `json:"last_error,omitempty"`
	LastChecked   time.Time `json:"last_checked"`
	Generation    uint64    `json:"generation"`
	Entities      int       `json:"entities"`
	Mutations     int64     `json:"mutations"`
	Shards        int       `json:"shards"`
	PendingRepair int       `json:"pending_repair"`
}

// ClusterStats is the router's view of the cluster: topology, traffic
// counters (hedged and failed-over query attempts, write quorum
// failures, repairs re-driven), latency digests, and per-node status.
type ClusterStats struct {
	Partitions int   `json:"partitions"`
	Queries    int64 `json:"queries"`
	Hedges     int64 `json:"hedges"`
	// HedgeWins counts hedged attempts whose answer beat the primary's:
	// Hedges fired minus HedgeWins is pure wasted work, the signal for
	// tuning HedgeAfter.
	HedgeWins  int64 `json:"hedge_wins"`
	Failovers  int64 `json:"failovers"`
	WriteFails int64 `json:"write_fails"`
	Repairs    int64 `json:"repairs"`
	// RepairBacklog is the current total of missed writes queued for
	// anti-entropy across all nodes (the sum of per-node PendingRepair);
	// Repairs counts ops already re-driven.
	RepairBacklog int `json:"repair_backlog"`

	// WriteLatency times quorum writes to their decision point (majority
	// acked, or quorum lost); QueryLatency times scatter-gather queries
	// end to end, hedges and failovers included.
	WriteLatency LatencySummary `json:"write_latency"`
	QueryLatency LatencySummary `json:"query_latency"`

	Nodes []ClusterNodeStatus `json:"nodes"`
}

// Stats reports the router's counters and health table. It makes no
// network calls; node fields are as of the last probe or contact.
func (c *Cluster) Stats() ClusterStats {
	s := c.inner.Stats()
	m := c.inner.Metrics()
	out := ClusterStats{
		Partitions:    s.Partitions,
		Queries:       s.Queries,
		Hedges:        s.Hedges,
		HedgeWins:     s.HedgeWins,
		Failovers:     s.Failovers,
		WriteFails:    s.WriteFails,
		Repairs:       s.Repairs,
		RepairBacklog: s.RepairBacklog,
		WriteLatency:  summarize(m.Write),
		QueryLatency:  summarize(m.Query),
		Nodes:         make([]ClusterNodeStatus, len(s.Nodes)),
	}
	for i, n := range s.Nodes {
		out.Nodes[i] = ClusterNodeStatus(n)
	}
	return out
}

// fromClusterMatches converts the wire matches to the public type.
func fromClusterMatches(ms []cluster.Match, err error) ([]Match, error) {
	if err != nil {
		return nil, err
	}
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{Entity: m.Entity, Similarity: m.Similarity}
	}
	//lint:vsmart-allow canonicalorder element-wise conversion of wire matches the cluster router already canonicalized
	return out, nil
}

// fromClusterNeighbors converts the wire neighbors to the public type.
func fromClusterNeighbors(ns []cluster.Neighbor, err error) ([]Neighbor, error) {
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(ns))
	for i, n := range ns {
		out[i] = Neighbor{Entity: n.Entity, Distance: n.Distance}
	}
	//lint:vsmart-allow canonicalorder element-wise conversion of wire neighbors the cluster router already canonicalized
	return out, nil
}
