package vsmartjoin

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestAddMergesMultiplicities is the regression test for the quadratic
// Dataset.Add index scan: merging must key off the stored index, and
// repeated adds to one entity must accumulate counts.
func TestAddMergesMultiplicities(t *testing.T) {
	d := NewDataset()
	d.Add("a", map[string]uint32{"x": 1})
	d.Add("b", map[string]uint32{"x": 1, "y": 2})
	d.Add("a", map[string]uint32{"x": 2, "z": 1}) // merge into the first entity
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	// a = {x:3, z:1}, b = {x:1, y:2}; Ruzicka = min-sum/max-sum = 1/6.
	res, err := AllPairs(d, Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 {
		t.Fatalf("pairs = %v, want one (a,b)", res.Pairs)
	}
	got := res.Pairs[0]
	if got.A != "a" || got.B != "b" {
		t.Fatalf("pair = %v", got)
	}
	if want := 1.0 / 6.0; math.Abs(got.Similarity-want) > 1e-12 {
		t.Fatalf("similarity = %v, want %v", got.Similarity, want)
	}
}

// TestAddManyEntities ingests enough entities that the pre-fix O(n²) scan
// would dominate; with the index map this stays trivially fast, and every
// entity must round-trip through its own slot.
func TestAddManyEntities(t *testing.T) {
	d := NewDataset()
	const n = 20000
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("e%d", i)
		d.Add(name, map[string]uint32{"shared": 1})
		d.Add(name, map[string]uint32{name: 1}) // second add exercises the merge path
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i, m := range d.sets {
		if got := d.names[m.ID]; got != fmt.Sprintf("e%d", i) {
			t.Fatalf("set %d holds entity %q", i, got)
		}
		if m.UnderlyingCardinality() != 2 {
			t.Fatalf("entity %d: cardinality %d, want 2 (merge lost an element)", i, m.UnderlyingCardinality())
		}
	}
}

// TestThresholdConventions is the regression test for the Threshold == 0
// sentinel bug: zero is a real threshold, negative selects the default,
// and out-of-range values error instead of joining with garbage.
func TestThresholdConventions(t *testing.T) {
	build := func() *Dataset {
		d := NewDataset()
		d.AddSet("a", []string{"x", "y"})
		d.AddSet("b", []string{"x", "z"})
		d.AddSet("c", []string{"q"})
		return d
	}

	t.Run("zero means zero", func(t *testing.T) {
		res, err := AllPairs(build(), Options{Threshold: 0})
		if err != nil {
			t.Fatal(err)
		}
		// At t = 0 every candidate pair qualifies, including (a,b) at 1/3,
		// which the old silent rewrite to 0.5 dropped.
		if len(res.Pairs) == 0 {
			t.Fatal("threshold 0 returned no pairs")
		}
		found := false
		for _, p := range res.Pairs {
			if p.A == "a" && p.B == "b" {
				found = true
			}
		}
		if !found {
			t.Fatalf("threshold 0 lost pair (a,b): %v", res.Pairs)
		}
	})

	t.Run("negative selects default", func(t *testing.T) {
		neg, err := AllPairs(build(), Options{Threshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		explicit, err := AllPairs(build(), Options{Threshold: DefaultThreshold})
		if err != nil {
			t.Fatal(err)
		}
		if len(neg.Pairs) != len(explicit.Pairs) {
			t.Fatalf("negative threshold: %v, default: %v", neg.Pairs, explicit.Pairs)
		}
	})

	t.Run("out of range rejected", func(t *testing.T) {
		for _, thr := range []float64{1.0001, 2, math.NaN()} {
			_, err := AllPairs(build(), Options{Threshold: thr})
			if err == nil {
				t.Fatalf("threshold %v accepted", thr)
			}
			if !strings.Contains(err.Error(), "threshold") {
				t.Fatalf("threshold %v: unhelpful error %v", thr, err)
			}
		}
	})

	t.Run("boundaries valid", func(t *testing.T) {
		for _, thr := range []float64{0, 1} {
			if _, err := AllPairs(build(), Options{Threshold: thr}); err != nil {
				t.Fatalf("threshold %v rejected: %v", thr, err)
			}
		}
	})
}

// TestPartitionOfEntityDegenerateCounts pins the routing guard at the
// public boundary: zero and negative partition counts must route to
// partition 0 instead of panicking (mod by zero) or wrapping through
// uint64(n) to an arbitrary partition.
func TestPartitionOfEntityDegenerateCounts(t *testing.T) {
	for _, n := range []int{0, -1, -8, 1} {
		for _, entity := range []string{"", "a", "entity-1", "another"} {
			if got := PartitionOfEntity(entity, n); got != 0 {
				t.Fatalf("PartitionOfEntity(%q, %d) = %d, want 0", entity, n, got)
			}
		}
	}
	for _, n := range []int{2, 5, 32} {
		for i := 0; i < 100; i++ {
			entity := fmt.Sprintf("entity-%d", i)
			got := PartitionOfEntity(entity, n)
			if got < 0 || got >= n {
				t.Fatalf("PartitionOfEntity(%q, %d) = %d out of range", entity, n, got)
			}
		}
	}
}
