package vsmartjoin

// The kNN differential harness, mirroring api_diff_test.go for the
// distance-ordered query surface: online QueryKNN/QueryKNNEntity and
// batch AllKNN must reproduce a brute-force oracle built on the public
// Similarity function — for every measure family, for k below, at, and
// beyond the corpus size, across shard counts, under every planner
// strategy (pinned and auto), and after churn. Shard counts are
// additionally held byte-identical to each other: the canonical
// (distance ascending, name ascending) order may not depend on the
// deployment shape. Batch AllKNN lists are also gated byte-identical
// against online QueryKNNEntity — the two pipelines answer the same
// question and must agree to the last bit.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

var knnDiffMeasures = []string{"ruzicka", "jaccard", "dice", "cosine"}

var knnDiffKs = []int{1, 5, 50}

// knnEntities builds the differential corpus: clustered random
// multisets (near-duplicates at every distance), exact duplicates
// (maximal distance ties — the name-order tie-break stress), and a few
// entities with unique elements (distance-1 pad candidates).
func knnEntities(rng *rand.Rand, n int) map[string]map[string]uint32 {
	out := randomEntities(rng, n, 26, 7, 4)
	for i := 0; i < 5; i++ {
		out[fmt.Sprintf("twin-%d", i)] = map[string]uint32{"e1": 3, "e2": 1, "e7": 2}
	}
	out["hermit-a"] = map[string]uint32{"only-a": 4}
	out["hermit-b"] = map[string]uint32{"only-b": 1}
	return out
}

// oracleKNN brute-forces the expected neighbor list: distance
// 1 − Similarity to every entity except self, sorted distance
// ascending with name-ascending ties, truncated to k.
func oracleKNN(t *testing.T, entities map[string]map[string]uint32, measure string, q map[string]uint32, self string, k int) []Neighbor {
	t.Helper()
	out := make([]Neighbor, 0, len(entities))
	for name, counts := range entities {
		if name == self {
			continue
		}
		sim := 0.0
		if sharesElement(q, counts) {
			var err error
			sim, err = Similarity(measure, q, counts)
			if err != nil {
				t.Fatal(err)
			}
		}
		out = append(out, Neighbor{Entity: name, Distance: 1 - sim})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Entity < out[j].Entity
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// mustMatchKNN compares a kNN answer to the oracle: identical entities
// in identical order, distances within the float tolerance the other
// differential harnesses use, and the canonical order holding within
// the answer itself.
func mustMatchKNN(t *testing.T, tag string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d neighbors, want %d\n got: %v\nwant: %v", tag, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Entity != want[i].Entity {
			t.Fatalf("%s: neighbor %d is %q, oracle has %q\n got: %v\nwant: %v", tag, i, got[i].Entity, want[i].Entity, got, want)
		}
		if d := got[i].Distance - want[i].Distance; d < -1e-9 || d > 1e-9 {
			t.Fatalf("%s: neighbor %q distance %v, oracle %v", tag, got[i].Entity, got[i].Distance, want[i].Distance)
		}
	}
	for i := 1; i < len(got); i++ {
		if worsePublicNeighbor(got[i-1], got[i]) {
			t.Fatalf("%s: answer not in canonical order at %d: %v", tag, i, got)
		}
	}
}

// knnProbes is the query battery: the duplicate multiset (maximal
// ties), generic overlaps, a single hot element, out-of-alphabet
// elements, and the empty query (every entity at distance exactly 1).
func knnProbes(entities map[string]map[string]uint32) []map[string]uint32 {
	return []map[string]uint32{
		{"e1": 3, "e2": 1, "e7": 2}, // the twins' multiset
		{"e0": 1, "e1": 2, "e3": 1},
		{"e5": 4},
		{"nowhere": 7, "e2": 1},
		{"fully-unknown": 1},
		{},
	}
}

// TestKNNDifferentialQuery is the online acceptance gate: measures ×
// strategies (auto and all three pinned) × shard counts {1,3,8} × k
// {1,5,50} against the oracle, with all shard counts byte-identical to
// each other, before and after churn.
func TestKNNDifferentialQuery(t *testing.T) {
	for _, measure := range knnDiffMeasures {
		for _, strategy := range []string{"auto", "prefix", "lsh", "brute"} {
			t.Run(fmt.Sprintf("%s/%s", measure, strategy), func(t *testing.T) {
				runKNNDifferentialQuery(t, measure, strategy)
			})
		}
	}
}

func runKNNDifferentialQuery(t *testing.T, measure, strategy string) {
	rng := rand.New(rand.NewSource(1012))
	entities := knnEntities(rng, 40)
	names := make([]string, 0, len(entities))
	for name := range entities {
		names = append(names, name)
	}
	sort.Strings(names)

	shardCounts := []int{1, 3, 8}
	indexes := make([]*Index, len(shardCounts))
	for i, shards := range shardCounts {
		ix, err := NewIndex(IndexOptions{Measure: measure, Shards: shards, Strategy: strategy})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		indexes[i] = ix
		for _, name := range names {
			mustAdd(t, ix, name, entities[name])
		}
		if strategy != "auto" {
			// A pinned override must be every shard's reported plan.
			for s, plan := range ix.Stats().Plans {
				if plan != strategy {
					t.Fatalf("shard %d of %d plans %q under pinned %q", s, shards, plan, strategy)
				}
			}
		}
	}

	compare := func(stage string) {
		t.Helper()
		for pi, probe := range knnProbes(entities) {
			for _, k := range knnDiffKs {
				var ref []byte
				for i, ix := range indexes {
					got := ix.QueryKNN(probe, k)
					tag := fmt.Sprintf("%s probe %d k=%d shards=%d", stage, pi, k, shardCounts[i])
					mustMatchKNN(t, tag, got, oracleKNN(t, entities, measure, probe, "", k))
					raw, err := json.Marshal(got)
					if err != nil {
						t.Fatal(err)
					}
					if ref == nil {
						ref = raw
					} else if !bytes.Equal(ref, raw) {
						t.Fatalf("%s: shard counts disagree\n%d shards: %s\n1 shard:  %s", tag, shardCounts[i], raw, ref)
					}
				}
			}
		}
		// Entity-relative form: a twin (its own tie group), a hermit (all
		// other entities at distance 1), and a generic entity.
		for _, entity := range []string{"twin-0", "hermit-a", names[7]} {
			if _, ok := entities[entity]; !ok {
				continue // removed by churn
			}
			for _, k := range knnDiffKs {
				for i, ix := range indexes {
					got, err := ix.QueryKNNEntity(entity, k)
					if err != nil {
						t.Fatal(err)
					}
					tag := fmt.Sprintf("%s entity %q k=%d shards=%d", stage, entity, k, shardCounts[i])
					mustMatchKNN(t, tag, got, oracleKNN(t, entities, measure, entities[entity], entity, k))
				}
			}
		}
	}
	compare("initial")

	// Churn: remove a third, upsert a third with fresh contents, add a
	// new twin so a tie group crosses every k boundary again.
	for i, name := range names {
		switch i % 3 {
		case 0:
			for _, ix := range indexes {
				mustRemove(t, ix, name)
			}
			delete(entities, name)
		case 1:
			fresh := make(map[string]uint32)
			for j, n := 0, 1+rng.Intn(5); j < n; j++ {
				fresh[fmt.Sprintf("e%d", rng.Intn(26))] = uint32(1 + rng.Intn(4))
			}
			for _, ix := range indexes {
				mustAdd(t, ix, name, fresh)
			}
			entities[name] = fresh
		}
	}
	lateTwin := map[string]uint32{"e1": 3, "e2": 1, "e7": 2}
	for _, ix := range indexes {
		mustAdd(t, ix, "late-twin", lateTwin)
	}
	entities["late-twin"] = lateTwin
	compare("churn")
}

// TestKNNDifferentialAllKNN is the batch acceptance gate: AllKNN's
// per-entity lists against the oracle for measures × k, and
// byte-identical to online QueryKNNEntity over the same corpus — the
// MapReduce pipeline and the serving path answering the same question
// must agree to the last bit.
func TestKNNDifferentialAllKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(1013))
	entities := knnEntities(rng, 35)
	d := datasetOf(entities)
	names := make([]string, 0, len(entities))
	for name := range entities {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, measure := range knnDiffMeasures {
		ix, err := BuildIndex(d, IndexOptions{Measure: measure})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range knnDiffKs {
			res, err := AllKNN(d, k, Options{Measure: measure, Machines: 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Neighbors) != len(names) {
				t.Fatalf("%s k=%d: lists for %d entities, want %d", measure, k, len(res.Neighbors), len(names))
			}
			for _, name := range names {
				tag := fmt.Sprintf("allknn %s k=%d entity %q", measure, k, name)
				batch := res.Neighbors[name]
				mustMatchKNN(t, tag, batch, oracleKNN(t, entities, measure, entities[name], name, k))
				online, err := ix.QueryKNNEntity(name, k)
				if err != nil {
					t.Fatal(err)
				}
				bj, err := json.Marshal(batch)
				if err != nil {
					t.Fatal(err)
				}
				oj, err := json.Marshal(online)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(bj, oj) {
					t.Fatalf("%s: batch and online disagree\nbatch:  %s\nonline: %s", tag, bj, oj)
				}
			}
		}
		ix.Close()
	}
}

// TestKNNAutoPlanCoversAllStrategies pins the "every strategy is
// exercised" property of the suite without overrides: corpora shaped
// for each heuristic regime must actually land on brute, prefix, and
// lsh under the auto planner, and answer oracle-exact there.
func TestKNNAutoPlanCoversAllStrategies(t *testing.T) {
	cases := []struct {
		name string
		plan string
		gen  func(rng *rand.Rand) map[string]map[string]uint32
	}{
		// ≤64 entities in the single shard → brute.
		{"small-corpus", "brute", func(rng *rand.Rand) map[string]map[string]uint32 {
			return randomEntities(rng, 30, 20, 6, 3)
		}},
		// 200 entities, no stop-word skew → prefix.
		{"uniform-corpus", "prefix", func(rng *rand.Rand) map[string]map[string]uint32 {
			return randomEntities(rng, 200, 400, 6, 3)
		}},
		// 200 entities all sharing one hot element → the hottest posting
		// list covers the whole partition → lsh.
		{"stopword-corpus", "lsh", func(rng *rand.Rand) map[string]map[string]uint32 {
			out := randomEntities(rng, 200, 400, 6, 3)
			for _, counts := range out {
				counts["hot"] = 1
			}
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			entities := tc.gen(rng)
			ix, err := NewIndex(IndexOptions{Measure: "jaccard"})
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			names := make([]string, 0, len(entities))
			for name := range entities {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				mustAdd(t, ix, name, entities[name])
			}
			plans := ix.Stats().Plans
			for s, plan := range plans {
				if plan != tc.plan {
					t.Fatalf("shard %d planned %q, corpus shaped for %q (plans %v)", s, plan, tc.plan, plans)
				}
			}
			for _, k := range []int{1, 5} {
				probe := entities[names[3]]
				mustMatchKNN(t, fmt.Sprintf("%s k=%d", tc.name, k),
					ix.QueryKNN(probe, k), oracleKNN(t, entities, "jaccard", probe, "", k))
			}
		})
	}
}
