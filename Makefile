GO ?= go

.PHONY: all build test race lint fmt vet vsmartlint staticcheck govulncheck

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The one lint entry point: what CI gates on, in the order CI runs it.
# staticcheck and govulncheck are external tools the repo does not
# vendor; when absent locally they are skipped with a note (CI always
# runs them).
lint: fmt vet vsmartlint staticcheck govulncheck

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

vsmartlint:
	$(GO) run ./cmd/vsmartlint ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck -test ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi
