GO ?= go

# Benchmark time per case for bench-json; CI passes BENCHTIME=1x for a
# smoke run that only proves the benchmarks and the JSON pipeline work.
BENCHTIME ?= 1s

# The serving-path benchmarks recorded in BENCH_010.json: internal
# index probe/verify, public API, sharded fan-out, zipf repeated-query
# cache, WAL append cost, the group-commit write storm, cluster
# scatter-gather, and the kNN paths (online QueryKNN across shard
# counts, batch AllKNN).
BENCH_REGEX := ^(BenchmarkQueryThreshold|BenchmarkQueryTopK|BenchmarkQueryKNN|BenchmarkIndexQuery|BenchmarkIndexTopK|BenchmarkShardedQuery|BenchmarkZipfRepeatedQuery|BenchmarkWALAppend|BenchmarkWriteStorm|BenchmarkClusterQuery|BenchmarkAllKNN)$$

.PHONY: all build test race lint fmt vet vsmartlint staticcheck govulncheck bench-json loadtest-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The one lint entry point: what CI gates on, in the order CI runs it.
# staticcheck and govulncheck are external tools the repo does not
# vendor; when absent locally they are skipped with a note (CI always
# runs them).
lint: fmt vet vsmartlint staticcheck govulncheck

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

vsmartlint:
	$(GO) run ./cmd/vsmartlint ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck -test ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

# Run the serving-path benchmarks and regenerate BENCH_010.json, diffed
# against the committed pre-kNN baseline. benchjson re-reads the file
# after writing, so this target fails if the artifact is not parseable
# JSON. The committed BENCH_010.json additionally folds in vsmartbench
# load runs via benchjson -loadtest (see bench/loadtest_*.json); the
# smoke run here skips those.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_REGEX)' -benchmem -benchtime $(BENCHTIME) ./... > bench/.last_bench.txt
	$(GO) run ./cmd/benchjson -in bench/.last_bench.txt -baseline bench/BASELINE_010.txt -out BENCH_010.json

# End-to-end load-harness smoke: boot a throwaway volatile daemon,
# drive it with vsmartbench for a couple of seconds, and fail unless
# the report is well-formed JSON with non-zero sustained QPS. The
# second leg is a batched write storm — zipf hot keys, every write
# shipped through POST /bulk — so a PR cannot silently break the
# sanctioned batched-ingest path. CI runs this; locally it doubles as
# a quick "is serving alive" check.
loadtest-smoke:
	@set -e; \
	$(GO) build -o /tmp/vsmartjoind.smoke ./cmd/vsmartjoind; \
	/tmp/vsmartjoind.smoke -addr 127.0.0.1:18321 & daemon=$$!; \
	trap "kill $$daemon 2>/dev/null" EXIT; \
	sleep 1; \
	$(GO) run ./cmd/vsmartbench -target 127.0.0.1:18321 \
		-entities 2000 -concurrency 8 -warmup 500ms -duration 2s \
		-out /tmp/vsmartbench.smoke.json; \
	$(GO) run ./cmd/vsmartbench -check /tmp/vsmartbench.smoke.json; \
	$(GO) run ./cmd/vsmartbench -target 127.0.0.1:18321 \
		-entities 2000 -concurrency 8 -read-pct 0 -zipf 1.2 \
		-write-burst 64 -warmup 500ms -duration 2s \
		-out /tmp/vsmartbench.storm.json; \
	$(GO) run ./cmd/vsmartbench -check /tmp/vsmartbench.storm.json; \
	$(GO) run ./cmd/vsmartbench -target 127.0.0.1:18321 -no-preload \
		-entities 2000 -concurrency 8 -read-pct 100 -knn-k 10 \
		-warmup 500ms -duration 2s \
		-out /tmp/vsmartbench.knn.json; \
	$(GO) run ./cmd/vsmartbench -check /tmp/vsmartbench.knn.json

# Batch AllKNN smoke: run the three-job MapReduce kNN pipeline over a
# tiny generated trace and demand one neighbor line per entity — a PR
# cannot silently break the -knn CLI path. CI runs this alongside
# loadtest-smoke.
.PHONY: allknn-smoke
allknn-smoke:
	@set -e; \
	for i in 1 2 3 4 5 6 7 8; do \
		printf "e$$i\tw$$(( i % 3 ))\t2\ne$$i\tw$$(( i % 5 ))\t1\n"; \
	done > /tmp/allknn.smoke.tsv; \
	$(GO) run ./cmd/vsmartjoin -measure jaccard -knn 3 \
		-in /tmp/allknn.smoke.tsv > /tmp/allknn.smoke.out; \
	lines=$$(wc -l < /tmp/allknn.smoke.out); \
	if [ "$$lines" -ne 24 ]; then \
		echo "allknn smoke: got $$lines neighbor lines, want 24 (8 entities x k=3)" >&2; exit 1; fi; \
	echo "allknn smoke: 8 entities x k=3 neighbors OK"
