GO ?= go

# Benchmark time per case for bench-json; CI passes BENCHTIME=1x for a
# smoke run that only proves the benchmarks and the JSON pipeline work.
BENCHTIME ?= 1s

# The serving-path benchmarks recorded in BENCH_009.json: internal
# index probe/verify, public API, sharded fan-out, zipf repeated-query
# cache, WAL append cost, the group-commit write storm, and cluster
# scatter-gather.
BENCH_REGEX := ^(BenchmarkQueryThreshold|BenchmarkQueryTopK|BenchmarkIndexQuery|BenchmarkIndexTopK|BenchmarkShardedQuery|BenchmarkZipfRepeatedQuery|BenchmarkWALAppend|BenchmarkWriteStorm|BenchmarkClusterQuery)$$

.PHONY: all build test race lint fmt vet vsmartlint staticcheck govulncheck bench-json loadtest-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The one lint entry point: what CI gates on, in the order CI runs it.
# staticcheck and govulncheck are external tools the repo does not
# vendor; when absent locally they are skipped with a note (CI always
# runs them).
lint: fmt vet vsmartlint staticcheck govulncheck

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

vsmartlint:
	$(GO) run ./cmd/vsmartlint ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck -test ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

# Run the serving-path benchmarks and regenerate BENCH_009.json, diffed
# against the committed pre-group-commit baseline. benchjson re-reads
# the file after writing, so this target fails if the artifact is not
# parseable JSON. The committed BENCH_009.json additionally folds in
# vsmartbench write-storm runs via benchjson -loadtest (see
# bench/loadtest_*.json); the smoke run here skips those.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_REGEX)' -benchmem -benchtime $(BENCHTIME) ./... > bench/.last_bench.txt
	$(GO) run ./cmd/benchjson -in bench/.last_bench.txt -baseline bench/BASELINE_009.txt -out BENCH_009.json

# End-to-end load-harness smoke: boot a throwaway volatile daemon,
# drive it with vsmartbench for a couple of seconds, and fail unless
# the report is well-formed JSON with non-zero sustained QPS. The
# second leg is a batched write storm — zipf hot keys, every write
# shipped through POST /bulk — so a PR cannot silently break the
# sanctioned batched-ingest path. CI runs this; locally it doubles as
# a quick "is serving alive" check.
loadtest-smoke:
	@set -e; \
	$(GO) build -o /tmp/vsmartjoind.smoke ./cmd/vsmartjoind; \
	/tmp/vsmartjoind.smoke -addr 127.0.0.1:18321 & daemon=$$!; \
	trap "kill $$daemon 2>/dev/null" EXIT; \
	sleep 1; \
	$(GO) run ./cmd/vsmartbench -target 127.0.0.1:18321 \
		-entities 2000 -concurrency 8 -warmup 500ms -duration 2s \
		-out /tmp/vsmartbench.smoke.json; \
	$(GO) run ./cmd/vsmartbench -check /tmp/vsmartbench.smoke.json; \
	$(GO) run ./cmd/vsmartbench -target 127.0.0.1:18321 \
		-entities 2000 -concurrency 8 -read-pct 0 -zipf 1.2 \
		-write-burst 64 -warmup 500ms -duration 2s \
		-out /tmp/vsmartbench.storm.json; \
	$(GO) run ./cmd/vsmartbench -check /tmp/vsmartbench.storm.json
