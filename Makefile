GO ?= go

# Benchmark time per case for bench-json; CI passes BENCHTIME=1x for a
# smoke run that only proves the benchmarks and the JSON pipeline work.
BENCHTIME ?= 1s

# The query-path benchmarks recorded in BENCH_007.json: internal index
# probe/verify, public API, sharded fan-out, zipf repeated-query cache,
# and cluster scatter-gather.
BENCH_REGEX := ^(BenchmarkQueryThreshold|BenchmarkQueryTopK|BenchmarkIndexQuery|BenchmarkIndexTopK|BenchmarkShardedQuery|BenchmarkZipfRepeatedQuery|BenchmarkClusterQuery)$$

.PHONY: all build test race lint fmt vet vsmartlint staticcheck govulncheck bench-json

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The one lint entry point: what CI gates on, in the order CI runs it.
# staticcheck and govulncheck are external tools the repo does not
# vendor; when absent locally they are skipped with a note (CI always
# runs them).
lint: fmt vet vsmartlint staticcheck govulncheck

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

vsmartlint:
	$(GO) run ./cmd/vsmartlint ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck -test ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

# Run the query-path benchmarks and regenerate BENCH_007.json, diffed
# against the committed pre-optimization baseline. benchjson re-reads
# the file after writing, so this target fails if the artifact is not
# parseable JSON.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_REGEX)' -benchmem -benchtime $(BENCHTIME) ./... > bench/.last_bench.txt
	$(GO) run ./cmd/benchjson -in bench/.last_bench.txt -baseline bench/BASELINE_007.txt -out BENCH_007.json
