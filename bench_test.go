package vsmartjoin

// The benchmark harness regenerates every figure of the paper's evaluation
// (§7) at benchmark scale. Each BenchmarkFigN exercises the same code paths
// as `cmd/experiments -fig N` on reduced traces so `go test -bench=.`
// finishes quickly; the full-scale reproduction lives in cmd/experiments
// and its output is recorded in EXPERIMENTS.md.
//
// Custom metrics: sim-s/run is the simulated cluster seconds of the
// measured configuration; pairs/run is the result size.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"vsmartjoin/internal/core"
	"vsmartjoin/internal/datagen"
	"vsmartjoin/internal/experiments"
	"vsmartjoin/internal/lsh"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/mrfs"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/ppjoin"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
	"vsmartjoin/internal/vcl"
)

// benchTrace caches the benchmark-scale trace across benchmarks.
var benchTrace *datagen.Trace

func benchInput(b *testing.B) (*datagen.Trace, *mrfs.Dataset) {
	b.Helper()
	if benchTrace == nil {
		tr, err := datagen.Generate(datagen.TinyConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchTrace = tr
	}
	return benchTrace, records.BuildInput("bench", benchTrace.Multisets, 64)
}

func benchCluster() mr.ClusterConfig {
	cl := experiments.Cluster(experiments.DefaultMachines)
	cl.Cost.MaxTaskSeconds = 0
	return cl
}

// BenchmarkFig2_Distributions regenerates the Fig 2–3 dataset histograms.
func BenchmarkFig2_Distributions(b *testing.B) {
	tr, _ := benchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perM := 0
		freq := make(map[multiset.Elem]int64)
		for _, m := range tr.Multisets {
			perM += m.UnderlyingCardinality()
			for _, e := range m.Entries {
				freq[e.Elem]++
			}
		}
		if perM == 0 || len(freq) == 0 {
			b.Fatal("empty distributions")
		}
	}
}

// BenchmarkFig4_SmallVsThreshold measures one point of the Fig 4 sweep per
// algorithm (t = 0.5; the V-SMART algorithms are threshold-insensitive).
func BenchmarkFig4_SmallVsThreshold(b *testing.B) {
	_, input := benchInput(b)
	for _, alg := range []core.Algorithm{core.OnlineAggregation, core.Lookup, core.Sharding} {
		b.Run(alg.String(), func(b *testing.B) {
			var sim float64
			var pairs int
			for i := 0; i < b.N; i++ {
				res, err := core.Join(benchCluster(), input, core.Config{
					Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: alg, NumReducers: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.Stats.TotalSeconds
				pairs = len(res.Pairs)
			}
			b.ReportMetric(sim, "sim-s/run")
			b.ReportMetric(float64(pairs), "pairs/run")
		})
	}
	b.Run("vcl", func(b *testing.B) {
		var sim float64
		for i := 0; i < b.N; i++ {
			res, err := vcl.Join(benchCluster(), input, vcl.Config{
				Measure: similarity.Ruzicka{}, Threshold: 0.5, NumReducers: 64,
			})
			if err != nil {
				b.Fatal(err)
			}
			sim = res.Stats.TotalSeconds
		}
		b.ReportMetric(sim, "sim-s/run")
	})
}

// BenchmarkFig5_SmallVsMachines measures the machine sweep: one execution,
// profile re-evaluated across the paper's 100–900 range.
func BenchmarkFig5_SmallVsMachines(b *testing.B) {
	_, input := benchInput(b)
	res, err := core.Join(benchCluster(), input, core.Config{
		Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: core.OnlineAggregation, NumReducers: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	cm := experiments.CostModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total float64
		for w := 100; w <= 900; w += 100 {
			for _, j := range res.Stats.Jobs {
				total += j.Profile.Evaluate(w, cm).Total
			}
		}
		if total <= 0 {
			b.Fatal("no cost")
		}
	}
}

// BenchmarkFig6_RealisticVsMachines measures the surviving algorithms'
// full pipelines (the realistic-scale failure modes are asserted in the
// core and vcl test suites).
func BenchmarkFig6_RealisticVsMachines(b *testing.B) {
	_, input := benchInput(b)
	for _, alg := range []core.Algorithm{core.OnlineAggregation, core.Sharding} {
		b.Run(alg.String(), func(b *testing.B) {
			var joining, sim float64
			for i := 0; i < b.N; i++ {
				res, err := core.Join(benchCluster(), input, core.Config{
					Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: alg, NumReducers: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				joining = res.JoiningStats.TotalSeconds
				sim = res.SimilarityStats.TotalSeconds
			}
			b.ReportMetric(joining, "joining-sim-s")
			b.ReportMetric(sim, "similarity-sim-s")
		})
	}
}

// BenchmarkFig7_ShardingC measures the joining phase across the C sweep.
func BenchmarkFig7_ShardingC(b *testing.B) {
	_, input := benchInput(b)
	for _, c := range []int{4, 64, 1024} {
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, ps, err := core.ShardingJoining(benchCluster(), input, c, 64)
				if err != nil {
					b.Fatal(err)
				}
				sim = ps.TotalSeconds
			}
			b.ReportMetric(sim, "sim-s/run")
		})
	}
}

// BenchmarkProxyStudy measures the §7.4 pipeline: join at t = 0.1, cluster
// into communities, score against the planted truth.
func BenchmarkProxyStudy(b *testing.B) {
	tr, input := benchInput(b)
	for i := 0; i < b.N; i++ {
		res, err := core.Join(benchCluster(), input, core.Config{
			Measure: similarity.Ruzicka{}, Threshold: 0.1, Algorithm: core.OnlineAggregation, NumReducers: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Pairs) == 0 {
			b.Fatal("no pairs")
		}
		_ = tr
	}
}

// --- ablation and micro benchmarks ---

// BenchmarkAblation_Combiners quantifies the dedicated-combiner design
// choice the paper calls out: identical results, smaller shuffle and
// better reducer balance with combiners on.
func BenchmarkAblation_Combiners(b *testing.B) {
	_, input := benchInput(b)
	for _, disabled := range []bool{false, true} {
		name := "with-combiners"
		if disabled {
			name = "without-combiners"
		}
		b.Run(name, func(b *testing.B) {
			var sim float64
			var shuffle int64
			for i := 0; i < b.N; i++ {
				res, err := core.Join(benchCluster(), input, core.Config{
					Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: core.OnlineAggregation,
					NumReducers: 64, DisableCombiners: disabled,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.Stats.TotalSeconds
				shuffle = 0
				for _, j := range res.Stats.Jobs {
					shuffle += j.ShuffleBytes
				}
			}
			b.ReportMetric(sim, "sim-s/run")
			b.ReportMetric(float64(shuffle), "shuffle-B/run")
		})
	}
}

// BenchmarkAblation_StopWords quantifies the §4 stop-word preprocessing:
// dropping hot elements trades an extra MR step for quadratic pair-list
// savings in Similarity1.
func BenchmarkAblation_StopWords(b *testing.B) {
	_, input := benchInput(b)
	for _, q := range []int{0, 64} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				res, err := core.Join(benchCluster(), input, core.Config{
					Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: core.Sharding,
					NumReducers: 64, StopWordQ: q,
				})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.Stats.TotalSeconds
			}
			b.ReportMetric(sim, "sim-s/run")
		})
	}
}

// BenchmarkMeasures times the similarity kernels on a merge-heavy pair.
func BenchmarkMeasures(b *testing.B) {
	entries := make([]multiset.Entry, 256)
	for i := range entries {
		entries[i] = multiset.Entry{Elem: multiset.Elem(i * 3), Count: uint32(i%7 + 1)}
	}
	x := multiset.New(1, entries)
	for i := range entries {
		entries[i] = multiset.Entry{Elem: multiset.Elem(i * 2), Count: uint32(i%5 + 1)}
	}
	y := multiset.New(2, entries)
	for _, m := range similarity.All() {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = similarity.Exact(m, x, y)
			}
		})
	}
}

// BenchmarkPPJoinVariants compares the sequential baselines' filter
// effectiveness.
func BenchmarkPPJoinVariants(b *testing.B) {
	tr, _ := benchInput(b)
	sets := tr.Multisets[:400]
	for _, v := range []ppjoin.Variant{ppjoin.VariantAllPairs, ppjoin.VariantPPJoin, ppjoin.VariantPPJoinPlus} {
		b.Run(v.String(), func(b *testing.B) {
			var verified int
			for i := 0; i < b.N; i++ {
				_, stats := ppjoin.JoinRuzicka(sets, 0.6, v)
				verified = stats.Verified
			}
			b.ReportMetric(float64(verified), "verified/run")
		})
	}
}

// BenchmarkLSH measures MinHash signature construction and banded joining.
func BenchmarkLSH(b *testing.B) {
	tr, _ := benchInput(b)
	sets := tr.Multisets[:400]
	b.Run("signatures", func(b *testing.B) {
		h := lsh.NewMinHasher(64, 7)
		for i := 0; i < b.N; i++ {
			for _, s := range sets[:64] {
				_ = h.Signature(s)
			}
		}
	})
	b.Run("join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := lsh.Join(sets, lsh.Config{Bands: 8, Rows: 8, Seed: 3, Threshold: 0.6, Verify: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShuffleSpill compares the engine's two shuffle modes on an
// identical join: all-in-memory versus spill-to-disk with a cap small
// enough that every map task writes segment runs. Results are identical;
// the metrics expose the real-time cost of streaming through disk and the
// simulated I/O charged for it.
func BenchmarkShuffleSpill(b *testing.B) {
	_, input := benchInput(b)
	for _, cap := range []int64{0, 4 << 10} {
		name := "in-memory"
		if cap > 0 {
			name = fmt.Sprintf("spill-cap-%dKiB", cap>>10)
		}
		b.Run(name, func(b *testing.B) {
			cl := benchCluster()
			cl.ShuffleBufferBytes = cap
			var pairs int
			var spilled int64
			for i := 0; i < b.N; i++ {
				res, err := core.Join(cl, input, core.Config{
					Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: core.OnlineAggregation, NumReducers: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				pairs = len(res.Pairs)
				spilled = 0
				for _, j := range res.Stats.Jobs {
					spilled += j.SpilledBytes
				}
			}
			if cap > 0 && spilled == 0 {
				b.Fatal("spill cap set but nothing spilled")
			}
			b.ReportMetric(float64(pairs), "pairs/run")
			b.ReportMetric(float64(spilled), "spilled-B/run")
		})
	}
}

// --- online serving benchmarks ---

// benchIndexEntities synthesizes entity→counts inputs for the online
// index: zipf-ish element popularity so posting lists are skewed the way
// real traffic is.
func benchIndexEntities(n int) []map[string]uint32 {
	out := make([]map[string]uint32, n)
	for i := range out {
		counts := make(map[string]uint32, 12)
		for j := 0; j < 12; j++ {
			// Quadratic skew: low element IDs are shared by many entities.
			elem := (i*31 + j*j*7) % (n/2 + 64)
			counts[fmt.Sprintf("e%d", elem)] = uint32(j%5 + 1)
		}
		out[i] = counts
	}
	return out
}

// BenchmarkIndexAdd measures incremental insertion into a live index,
// including posting-list upkeep and the periodic compaction triggered by
// the upserts that wrap around the key space.
func BenchmarkIndexAdd(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			entities := benchIndexEntities(n)
			ix, err := NewIndex(IndexOptions{Measure: "ruzicka"})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustAdd(b, ix, fmt.Sprintf("entity-%d", i%n), entities[i%n])
			}
		})
	}
}

// BenchmarkIndexQuery measures threshold queries across dataset sizes and
// thresholds. Higher thresholds let the prefix and length filters cut the
// probe short, so sims/op (exact verifications per query) falls with t.
func BenchmarkIndexQuery(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		entities := benchIndexEntities(n)
		ix, err := NewIndex(IndexOptions{Measure: "ruzicka"})
		if err != nil {
			b.Fatal(err)
		}
		for i, counts := range entities {
			mustAdd(b, ix, fmt.Sprintf("entity-%d", i), counts)
		}
		for _, t := range []float64{0.1, 0.5, 0.9} {
			b.Run(fmt.Sprintf("n=%d/t=%v", n, t), func(b *testing.B) {
				before := ix.Stats()
				for i := 0; i < b.N; i++ {
					if _, err := ix.QueryThreshold(entities[i%len(entities)], t); err != nil {
						b.Fatal(err)
					}
				}
				after := ix.Stats()
				b.ReportMetric(float64(after.Verified-before.Verified)/float64(b.N), "sims/op")
				b.ReportMetric(float64(after.Results-before.Results)/float64(b.N), "matches/op")
			})
		}
	}
}

// BenchmarkIndexTopK measures ranked queries with the rising-floor cutoff.
func BenchmarkIndexTopK(b *testing.B) {
	entities := benchIndexEntities(10000)
	ix, err := NewIndex(IndexOptions{Measure: "ruzicka"})
	if err != nil {
		b.Fatal(err)
	}
	for i, counts := range entities {
		mustAdd(b, ix, fmt.Sprintf("entity-%d", i), counts)
	}
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.QueryTopK(entities[i%len(entities)], k)
			}
		})
	}
}

// BenchmarkZipfRepeatedQuery measures a skewed serving workload: query
// popularity drawn from the same Zipf machinery the trace generator
// uses (internal/datagen), so a handful of head queries repeat
// constantly while the tail is seen once — the "millions of users"
// shape. The cache=off mode is the uncached floor every query pays;
// cache=on is the same zipf mix with the bounded LRU result cache
// (hits/op reports its measured hit rate); cache=hit isolates the pure
// hit path by replaying only the head query, the cost a repeated query
// pays once cached.
func BenchmarkZipfRepeatedQuery(b *testing.B) {
	const n = 10000
	entities := benchIndexEntities(n)
	ranks := datagen.ZipfRanks(7, 1.4, 4, uint64(n-1), 1<<15)
	head := make([]uint64, len(ranks))
	for i := range head {
		head[i] = ranks[0]
	}
	modes := []struct {
		name  string
		opts  IndexOptions
		ranks []uint64
	}{
		{"cache=off", IndexOptions{Measure: "ruzicka", CacheSize: -1}, ranks},
		{"cache=on", IndexOptions{Measure: "ruzicka"}, ranks},
		{"cache=hit", IndexOptions{Measure: "ruzicka"}, head},
	}
	for _, mode := range modes {
		ix, err := NewIndex(mode.opts)
		if err != nil {
			b.Fatal(err)
		}
		for i, counts := range entities {
			mustAdd(b, ix, fmt.Sprintf("entity-%d", i), counts)
		}
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			before := ix.Stats()
			for i := 0; i < b.N; i++ {
				if _, err := ix.QueryThreshold(entities[mode.ranks[i%len(mode.ranks)]], 0.5); err != nil {
					b.Fatal(err)
				}
			}
			if after := ix.Stats(); after.CacheHits > before.CacheHits {
				b.ReportMetric(float64(after.CacheHits-before.CacheHits)/float64(b.N), "hits/op")
			}
		})
	}
}

// BenchmarkShardedQuery compares the query fan-out across shard widths:
// threshold and top-k queries against the identical 10k-entity dataset
// partitioned 1/4/8 ways. Sharding trades a little per-query fan-out
// overhead for parallel probing and, above all, per-shard write locks;
// single-threaded query latency is the cost side of that trade.
func BenchmarkShardedQuery(b *testing.B) {
	entities := benchIndexEntities(10000)
	for _, shards := range []int{1, 4, 8} {
		ix, err := NewIndex(IndexOptions{Measure: "ruzicka", Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		for i, counts := range entities {
			if err := ix.Add(fmt.Sprintf("entity-%d", i), counts); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("shards=%d/threshold", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ix.QueryThreshold(entities[i%len(entities)], 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("shards=%d/topk", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.QueryTopK(entities[i%len(entities)], 10)
			}
		})
	}
}

// BenchmarkWALAppend measures write throughput with durability off and
// on: the WAL-on figure includes encoding, framing, checksumming, and
// the unbuffered write into the OS cache on every Add (but no fsync,
// matching the documented durability granularity). SnapshotEvery is
// disabled so the numbers isolate the append path.
func BenchmarkWALAppend(b *testing.B) {
	entities := benchIndexEntities(4096)
	for _, durable := range []bool{false, true} {
		name := "wal=off"
		opts := IndexOptions{Measure: "ruzicka"}
		if durable {
			name = "wal=on"
			opts.Dir = b.TempDir()
			opts.SnapshotEvery = -1
		}
		b.Run(name, func(b *testing.B) {
			ix, err := NewIndex(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := i % len(entities)
				if err := ix.Add(fmt.Sprintf("entity-%d", n), entities[n]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWriteStorm measures sustained mutation throughput under a
// contended hot-key write storm: entity popularity drawn zipf(s=1.2) so
// a few head entities absorb most writes, GOMAXPROCS concurrent
// writers, and both durability modes — os (no fsync before ack) and
// sync (group-committed fsync before every ack). unbatched drives the
// single-op Add path, the baseline; batch=64 accumulates per-worker
// AddBatch calls; async fires AddAsync and reads acknowledgements in
// windows of 256. fsyncs/mut reports physical fsyncs per acknowledged
// mutation, the group-commit amortization gate (< 0.1 under sync
// batching).
func BenchmarkWriteStorm(b *testing.B) {
	const n = 4096
	const seqMask = 1<<16 - 1
	entities := benchIndexEntities(n)
	zipf := rand.NewZipf(rand.New(rand.NewSource(42)), 1.2, 1, n-1)
	seq := make([]uint64, seqMask+1)
	for i := range seq {
		seq[i] = zipf.Uint64()
	}
	durabilities := []struct {
		name string
		d    Durability
	}{
		{"durability=os", DurabilityOS},
		{"durability=sync", DurabilitySync},
	}
	for _, dur := range durabilities {
		for _, mode := range []string{"unbatched", "batch=64", "async"} {
			b.Run(dur.name+"/"+mode, func(b *testing.B) {
				ix, err := NewIndex(IndexOptions{Measure: "ruzicka", Dir: b.TempDir(),
					SnapshotEvery: -1, Durability: dur.d})
				if err != nil {
					b.Fatal(err)
				}
				defer ix.Close()
				var cursor atomic.Uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					batch := make([]BatchEntry, 0, 64)
					acks := make([]<-chan error, 0, 256)
					flush := func() {
						if err := ix.AddBatch(batch); err != nil {
							b.Error(err)
						}
						batch = batch[:0]
					}
					drain := func() {
						for _, c := range acks {
							if err := <-c; err != nil {
								b.Error(err)
							}
						}
						acks = acks[:0]
					}
					for pb.Next() {
						k := seq[cursor.Add(1)&seqMask]
						name := fmt.Sprintf("entity-%d", k)
						switch mode {
						case "unbatched":
							if err := ix.Add(name, entities[k]); err != nil {
								b.Error(err)
								return
							}
						case "batch=64":
							batch = append(batch, BatchEntry{Entity: name, Elements: entities[k]})
							if len(batch) == cap(batch) {
								flush()
							}
						case "async":
							acks = append(acks, ix.AddAsync(name, entities[k]))
							if len(acks) == cap(acks) {
								drain()
							}
						}
					}
					flush()
					drain()
				})
				b.StopTimer()
				if st := ix.Stats(); st.WALRecords > 0 {
					b.ReportMetric(float64(st.WALFsyncs)/float64(st.WALRecords), "fsyncs/mut")
				}
			})
		}
	}
}

// BenchmarkEngine measures the raw MapReduce substrate on a word-count
// shaped job.
func BenchmarkEngine(b *testing.B) {
	recs := make([]mrfs.Record, 4096)
	for i := range recs {
		recs[i] = mrfs.Record{
			Key: []byte(fmt.Sprintf("k%d", i)),
			Val: []byte(fmt.Sprintf("v%d w%d w%d", i, i%17, i%31)),
		}
	}
	input := mrfs.FromRecords("bench", recs, 16)
	mapper := mr.MapperFunc(func(_ *mr.TaskContext, rec mrfs.Record, emit mr.Emitter) error {
		emit.Emit(rec.Val[:2], rec.Key)
		return nil
	})
	reducer := mr.ReducerFunc(func(_ *mr.TaskContext, key []byte, values *mr.Values, emit mr.Emitter) error {
		n := 0
		for {
			if _, ok := values.Next(); !ok {
				break
			}
			n++
		}
		emit.Emit(key, []byte(fmt.Sprintf("%d", n)))
		return nil
	})
	cl := mr.NewCluster(8, 1<<30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mr.Run(cl, mr.Job{Name: "bench", Input: input, Mapper: mapper, Reducer: reducer}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchColdStartDataset builds the shared cold-start corpus once.
func benchColdStartDataset(n int) *Dataset {
	entities := benchIndexEntities(n)
	d := NewDataset()
	for i, counts := range entities {
		d.Add(fmt.Sprintf("entity-%d", i), counts)
	}
	return d
}

// BenchmarkBulkBuild measures the offline cold-start path: materialize a
// corpus as per-shard snapshot files (one batch job, no WAL appends) and
// open them. Compare with BenchmarkColdStartPerAdd on the same corpus.
func BenchmarkBulkBuild(b *testing.B) {
	for _, n := range []int{10000, 50000} {
		d := benchColdStartDataset(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dir := b.TempDir() + "/idx"
				if _, err := BuildIndexFiles(d, IndexOptions{Measure: "ruzicka", Shards: 4, Dir: dir}); err != nil {
					b.Fatal(err)
				}
				ix, err := OpenIndex(IndexOptions{Measure: "ruzicka", Shards: 4, Dir: dir})
				if err != nil {
					b.Fatal(err)
				}
				if ix.Len() != n {
					b.Fatalf("len %d", ix.Len())
				}
				ix.Close()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "entities/s")
		})
	}
}

// BenchmarkColdStartPerAdd measures the same cold start through the
// serving path: every entity WAL-appended and inserted one by one, with
// the default snapshot cadence a daemon runs under — the only bootstrap
// that existed before the bulk builder. The periodic snapshots make
// this path superlinear in corpus size (every 4096 Adds rewrite the
// shard so far), which is exactly why bulk loads do not belong on it.
func BenchmarkColdStartPerAdd(b *testing.B) {
	for _, n := range []int{10000, 50000} {
		d := benchColdStartDataset(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix, err := NewIndex(IndexOptions{Measure: "ruzicka", Shards: 4, Dir: b.TempDir() + "/idx"})
				if err != nil {
					b.Fatal(err)
				}
				var addErr error
				d.Each(func(entity string, counts map[string]uint32) bool {
					addErr = ix.Add(entity, counts)
					return addErr == nil
				})
				if addErr != nil {
					b.Fatal(addErr)
				}
				if ix.Len() != n {
					b.Fatalf("len %d", ix.Len())
				}
				ix.Close()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "entities/s")
		})
	}
}

// BenchmarkIndexOpen measures opening an already-built data dir — the
// steady-state cold start of a restarting daemon. Snapshots load
// through the sealed bulk path (no WAL replay, no upsert machinery),
// so this is the number a -load-every-start bootstrap is up against.
func BenchmarkIndexOpen(b *testing.B) {
	for _, n := range []int{10000, 50000} {
		d := benchColdStartDataset(n)
		dir := b.TempDir() + "/idx"
		opts := IndexOptions{Measure: "ruzicka", Shards: 4, Dir: dir}
		if _, err := BuildIndexFiles(d, opts); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix, err := OpenIndex(opts)
				if err != nil {
					b.Fatal(err)
				}
				if ix.Len() != n {
					b.Fatalf("len %d", ix.Len())
				}
				ix.Close()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "entities/s")
		})
	}
}

// BenchmarkQueryKNN measures the online kNN read path across shard
// widths: the same 10k-entity dataset as BenchmarkShardedQuery,
// partitioned 1/4/8 ways, k=10 nearest per query. The inner fan-out
// raises a per-shard distance floor exactly as QueryTopK raises a
// similarity floor, so the shard trade reads the same way: a little
// merge overhead for parallel probing.
func BenchmarkQueryKNN(b *testing.B) {
	entities := benchIndexEntities(10000)
	for _, shards := range []int{1, 4, 8} {
		ix, err := NewIndex(IndexOptions{Measure: "ruzicka", Shards: shards, CacheSize: -1})
		if err != nil {
			b.Fatal(err)
		}
		for i, counts := range entities {
			if err := ix.Add(fmt.Sprintf("entity-%d", i), counts); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if ns := ix.QueryKNN(entities[i%len(entities)], 10); len(ns) != 10 {
					b.Fatalf("got %d neighbors", len(ns))
				}
			}
		})
		ix.Close()
	}
}

// BenchmarkAllKNN measures the batch MapReduce pipeline end to end:
// grouping, bound computation, and refine over a 2000-entity dataset,
// k=10 lists for every entity per iteration. The entities/s metric is
// the per-run amortized rate the CLI path sustains.
func BenchmarkAllKNN(b *testing.B) {
	const n = 2000
	entities := benchIndexEntities(n)
	d := NewDataset()
	for i, counts := range entities {
		d.Add(fmt.Sprintf("entity-%d", i), counts)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := AllKNN(d, 10, Options{Measure: "ruzicka"})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Neighbors) != n {
			b.Fatalf("lists for %d entities, want %d", len(res.Neighbors), n)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "entities/s")
}
