package vsmartjoin_test

import (
	"fmt"

	"vsmartjoin"
)

// ExampleAllPairs demonstrates the basic exact all-pair similarity join.
func ExampleAllPairs() {
	d := vsmartjoin.NewDataset()
	d.Add("ip-1", map[string]uint32{"a": 3, "b": 1})
	d.Add("ip-2", map[string]uint32{"a": 2, "b": 2})
	d.Add("ip-3", map[string]uint32{"z": 9})

	res, err := vsmartjoin.AllPairs(d, vsmartjoin.Options{
		Measure:   "ruzicka",
		Threshold: 0.5,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Pairs {
		fmt.Printf("%s ~ %s: %.2f\n", p.A, p.B, p.Similarity)
	}
	// Output:
	// ip-1 ~ ip-2: 0.60
}

// ExampleResult_Communities shows the community-discovery post-processing.
func ExampleResult_Communities() {
	d := vsmartjoin.NewDataset()
	d.Add("x1", map[string]uint32{"p": 2, "q": 2})
	d.Add("x2", map[string]uint32{"p": 2, "q": 2})
	d.Add("y1", map[string]uint32{"r": 5})
	d.Add("y2", map[string]uint32{"r": 5})

	res, err := vsmartjoin.AllPairs(d, vsmartjoin.Options{Threshold: 0.9})
	if err != nil {
		panic(err)
	}
	for _, c := range res.Communities() {
		fmt.Println(c)
	}
	// Output:
	// [x1 x2]
	// [y1 y2]
}

// ExampleSimilarity computes a one-off similarity without a join.
func ExampleSimilarity() {
	sim, err := vsmartjoin.Similarity("jaccard",
		map[string]uint32{"a": 1, "b": 1, "c": 1},
		map[string]uint32{"b": 1, "c": 1, "d": 1},
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", sim)
	// Output:
	// 0.50
}

// ExampleDataset_AddSet joins documents as shingle sets.
func ExampleDataset_AddSet() {
	d := vsmartjoin.NewDataset()
	d.AddSet("doc-a", []string{"the quick", "quick brown", "brown fox"})
	d.AddSet("doc-b", []string{"the quick", "quick brown", "brown dog"})

	res, err := vsmartjoin.AllPairs(d, vsmartjoin.Options{
		Measure: "jaccard", Threshold: 0.4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Pairs))
	// Output:
	// 1
}
