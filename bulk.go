package vsmartjoin

import (
	"errors"
	"fmt"
	"path/filepath"

	"vsmartjoin/internal/build"
	"vsmartjoin/internal/cluster"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

// BuildStats reports what BuildIndexFiles wrote.
type BuildStats struct {
	// Entities is the number of entities written across all shards.
	Entities int64
	// Shards is the shard count of the written layout.
	Shards int
	// SimulatedSeconds is the simulated cluster time of the underlying
	// MapReduce build job (the same cost model AllPairs reports).
	SimulatedSeconds float64
	// SpilledBytes is the shuffle volume spilled to disk (0 unless
	// BuildShuffleBufferBytes forced spilling).
	SpilledBytes int64
}

// BuildIndexFiles materializes a Dataset as a durable index directory
// at opts.Dir — the offline bulk path. Where BuildIndex with a Dir
// WAL-appends every entity through the serving code, BuildIndexFiles
// streams the corpus through the batch MapReduce machinery and writes
// each shard's generation-1 snapshot file directly: cold-starting a
// large corpus becomes one batch job instead of a million logged Adds.
// The directory then opens with OpenIndex (or vsmartjoind -data-dir)
// with zero WAL records to replay, answers queries exactly like an
// index built by the same Adds, and accepts further durable mutations.
//
// opts.Dir is required and must not already hold anything; Measure and
// Shards mean what they do for NewIndex and are fixed into the layout.
// SnapshotEvery plays no role at build time. Entity IDs are assigned in
// dataset insertion order, exactly as BuildIndex's Adds would assign
// them, so the two paths produce identical results down to tie-breaks.
func BuildIndexFiles(d *Dataset, opts IndexOptions) (BuildStats, error) {
	var bs BuildStats
	if opts.Dir == "" {
		return bs, errors.New("vsmartjoin: BuildIndexFiles requires Dir")
	}
	name := opts.Measure
	if name == "" {
		name = "ruzicka"
	}
	m, err := similarity.ByName(name)
	if err != nil {
		return bs, err
	}
	shards := opts.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 0 || shards > maxShards {
		return bs, fmt.Errorf("vsmartjoin: shard count %d outside [1, %d]", opts.Shards, maxShards)
	}
	stats, err := build.Build(bulkSource(d), build.Options{
		Dir:                opts.Dir,
		Measure:            m.Name(),
		Shards:             shards,
		ShuffleBufferBytes: opts.BuildShuffleBufferBytes,
	})
	if err != nil {
		return bs, fmt.Errorf("vsmartjoin: build index files: %w", err)
	}
	bs.Entities = stats.Entities
	bs.Shards = stats.Shards
	bs.SimulatedSeconds = stats.Job.TotalSeconds
	bs.SpilledBytes = stats.Job.SpilledBytes
	return bs, nil
}

// ClusterBuildStats reports what BuildClusterFiles wrote.
type ClusterBuildStats struct {
	// Partitions is the number of node directories written.
	Partitions int
	// Nodes holds one BuildStats per node directory, in partition order.
	Nodes []BuildStats
}

// NodeDirName is the directory name BuildClusterFiles gives partition
// p's index under the output directory ("node-000", "node-001", ...).
func NodeDirName(p int) string { return fmt.Sprintf("node-%03d", p) }

// BuildClusterFiles carves a Dataset into per-node index directories —
// the bulk cold-start path for a vsmartjoind cluster. Every entity is
// routed to one of partitions sub-datasets by the same entity-name
// hash the cluster router writes with (PartitionOfEntity), and each
// sub-dataset is bulk-built (BuildIndexFiles) into
// opts.Dir/node-000 ... node-NNN. Starting one node daemon per
// directory (replicas of a partition copy the same directory) and
// pointing a router at them yields exactly the cluster that routing
// the same entities through Cluster.Add would have built — one batch
// job instead of a million quorum writes.
//
// opts is interpreted as for BuildIndexFiles, with opts.Dir naming the
// parent of the node directories; opts.Shards is each node's internal
// shard count. partitions must match the router's partition count —
// entities would otherwise be searched on nodes that do not hold them.
func BuildClusterFiles(d *Dataset, opts IndexOptions, partitions int) (ClusterBuildStats, error) {
	var cs ClusterBuildStats
	if opts.Dir == "" {
		return cs, errors.New("vsmartjoin: BuildClusterFiles requires Dir")
	}
	if partitions < 1 || partitions > maxShards {
		return cs, fmt.Errorf("vsmartjoin: partition count %d outside [1, %d]", partitions, maxShards)
	}
	// Carve by name hash. Dataset.Add merges repeated entities, which is
	// NOT the upsert Cluster.Add applies — but d.Each already yields each
	// entity once with its final (merged) counts, so the sub-datasets see
	// every entity exactly once either way.
	parts := make([]*Dataset, partitions)
	for i := range parts {
		parts[i] = NewDataset()
	}
	if d != nil {
		d.Each(func(entity string, counts map[string]uint32) bool {
			parts[cluster.PartitionOf(entity, partitions)].Add(entity, counts)
			return true
		})
	}
	cs.Partitions = partitions
	cs.Nodes = make([]BuildStats, partitions)
	for p, part := range parts {
		sub := opts
		sub.Dir = filepath.Join(opts.Dir, NodeDirName(p))
		bs, err := BuildIndexFiles(part, sub)
		if err != nil {
			return cs, fmt.Errorf("vsmartjoin: build cluster partition %d: %w", p, err)
		}
		cs.Nodes[p] = bs
	}
	return cs, nil
}

// bulkSource streams a Dataset into the builder with the exact ID
// assignment and element encoding the incremental path would make: IDs
// follow first-seen insertion order, elements encode through the same
// walAddRecord the serving WAL uses (one canonical encoding keeps the
// bulk-equals-incremental differential honest), and a name seen twice
// (possible only via AddByID) yields its first ID again — the builder's
// last-occurrence-wins dedup then reproduces Add's upsert. The yielded
// entities are transient: the builder encodes each straight into its
// job-input record, so beyond that input no intermediate copy of the
// corpus is materialized.
func bulkSource(d *Dataset) build.Source {
	return func(yield func(build.Entity) bool) {
		if d == nil {
			return
		}
		byName := make(map[string]uint64, d.Len())
		d.Each(func(entity string, counts map[string]uint32) bool {
			id, ok := byName[entity]
			if !ok {
				id = uint64(len(byName) + 1)
				byName[entity] = id
			}
			rec := walAddRecord(multiset.ID(id), entity, counts)
			return yield(build.Entity{ID: id, Name: entity, Elements: rec.Elements})
		})
	}
}
