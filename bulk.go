package vsmartjoin

import (
	"errors"
	"fmt"

	"vsmartjoin/internal/build"
	"vsmartjoin/internal/multiset"
	"vsmartjoin/internal/similarity"
)

// BuildStats reports what BuildIndexFiles wrote.
type BuildStats struct {
	// Entities is the number of entities written across all shards.
	Entities int64
	// Shards is the shard count of the written layout.
	Shards int
	// SimulatedSeconds is the simulated cluster time of the underlying
	// MapReduce build job (the same cost model AllPairs reports).
	SimulatedSeconds float64
	// SpilledBytes is the shuffle volume spilled to disk (0 unless
	// BuildShuffleBufferBytes forced spilling).
	SpilledBytes int64
}

// BuildIndexFiles materializes a Dataset as a durable index directory
// at opts.Dir — the offline bulk path. Where BuildIndex with a Dir
// WAL-appends every entity through the serving code, BuildIndexFiles
// streams the corpus through the batch MapReduce machinery and writes
// each shard's generation-1 snapshot file directly: cold-starting a
// large corpus becomes one batch job instead of a million logged Adds.
// The directory then opens with OpenIndex (or vsmartjoind -data-dir)
// with zero WAL records to replay, answers queries exactly like an
// index built by the same Adds, and accepts further durable mutations.
//
// opts.Dir is required and must not already hold anything; Measure and
// Shards mean what they do for NewIndex and are fixed into the layout.
// SnapshotEvery plays no role at build time. Entity IDs are assigned in
// dataset insertion order, exactly as BuildIndex's Adds would assign
// them, so the two paths produce identical results down to tie-breaks.
func BuildIndexFiles(d *Dataset, opts IndexOptions) (BuildStats, error) {
	var bs BuildStats
	if opts.Dir == "" {
		return bs, errors.New("vsmartjoin: BuildIndexFiles requires Dir")
	}
	name := opts.Measure
	if name == "" {
		name = "ruzicka"
	}
	m, err := similarity.ByName(name)
	if err != nil {
		return bs, err
	}
	shards := opts.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 0 || shards > maxShards {
		return bs, fmt.Errorf("vsmartjoin: shard count %d outside [1, %d]", opts.Shards, maxShards)
	}
	stats, err := build.Build(bulkSource(d), build.Options{
		Dir:                opts.Dir,
		Measure:            m.Name(),
		Shards:             shards,
		ShuffleBufferBytes: opts.BuildShuffleBufferBytes,
	})
	if err != nil {
		return bs, fmt.Errorf("vsmartjoin: build index files: %w", err)
	}
	bs.Entities = stats.Entities
	bs.Shards = stats.Shards
	bs.SimulatedSeconds = stats.Job.TotalSeconds
	bs.SpilledBytes = stats.Job.SpilledBytes
	return bs, nil
}

// bulkSource streams a Dataset into the builder with the exact ID
// assignment and element encoding the incremental path would make: IDs
// follow first-seen insertion order, elements encode through the same
// walAddRecord the serving WAL uses (one canonical encoding keeps the
// bulk-equals-incremental differential honest), and a name seen twice
// (possible only via AddByID) yields its first ID again — the builder's
// last-occurrence-wins dedup then reproduces Add's upsert. The yielded
// entities are transient: the builder encodes each straight into its
// job-input record, so beyond that input no intermediate copy of the
// corpus is materialized.
func bulkSource(d *Dataset) build.Source {
	return func(yield func(build.Entity) bool) {
		if d == nil {
			return
		}
		byName := make(map[string]uint64, d.Len())
		d.Each(func(entity string, counts map[string]uint32) bool {
			id, ok := byName[entity]
			if !ok {
				id = uint64(len(byName) + 1)
				byName[entity] = id
			}
			rec := walAddRecord(multiset.ID(id), entity, counts)
			return yield(build.Entity{ID: id, Name: entity, Elements: rec.Elements})
		})
	}
}
