package vsmartjoin

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadTrace parses the TSV observation format shared by cmd/vsmartjoin
// and cmd/vsmartjoind into a Dataset:
//
//	entity<TAB>element[<TAB>count]
//
// one observation per line, count defaulting to 1, repeated
// observations of the same (entity, element) summed, blank lines and
// #-comments skipped. Entities are added in first-seen order, not map
// order: entity IDs feed record keys, partition hashes, and shard
// routing, so identical inputs must produce identical runs. It returns
// the dataset and the number of observation lines read.
func ReadTrace(r io.Reader) (*Dataset, int, error) {
	d := NewDataset()
	counts := map[string]map[string]uint32{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 2 {
			return nil, lines, fmt.Errorf("line %d: want entity<TAB>element[<TAB>count], got %q", lines+1, line)
		}
		count := uint32(1)
		if len(fields) >= 3 {
			n, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, lines, fmt.Errorf("line %d: bad count %q: %v", lines+1, fields[2], err)
			}
			count = uint32(n)
		}
		m := counts[fields[0]]
		if m == nil {
			m = map[string]uint32{}
			counts[fields[0]] = m
			order = append(order, fields[0])
		}
		m[fields[1]] += count
		lines++
	}
	if err := sc.Err(); err != nil {
		return nil, lines, err
	}
	for _, entity := range order {
		d.Add(entity, counts[entity])
	}
	return d, lines, nil
}

// ReadTraceFile reads a TSV trace from path with ReadTrace,
// transparently decompressing files with a ".gz" suffix — real traces
// at bulk-build scale ship compressed.
func ReadTraceFile(path string) (*Dataset, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %v", path, err)
		}
		defer gz.Close()
		r = gz
	}
	d, lines, err := ReadTrace(r)
	if err != nil {
		return nil, lines, fmt.Errorf("%s: %v", path, err)
	}
	return d, lines, nil
}
