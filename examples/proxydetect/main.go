// Proxydetect reproduces the paper's motivating application end to end:
// identify the IPs of ISP load balancers by joining IPs on the similarity
// of their cookie multisets, then clustering the similar pairs into
// communities (§1, §7.4).
//
// The example synthesizes a small traffic trace with three planted proxy
// farms plus background surfers, runs the exact all-pair join at a low
// threshold (the paper uses t = 0.1 for maximum coverage), and shows how
// filtering low-activity IPs removes the false positives.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"vsmartjoin"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	traffic := map[string]map[string]uint32{} // IP → cookie multiset
	truth := map[string]string{}              // IP → planted farm

	// Three proxy farms: the member IPs share a pool of cookies, because
	// the same surfers egress through all of the farm's IPs.
	for farm := 0; farm < 3; farm++ {
		pool := make([]string, 40+10*farm)
		for i := range pool {
			pool[i] = fmt.Sprintf("cookie-farm%d-%d", farm, i)
		}
		for member := 0; member < 4+farm; member++ {
			ip := fmt.Sprintf("proxy-%d-ip-%d", farm, member)
			counts := map[string]uint32{}
			for _, c := range pool {
				if rng.Float64() < 0.85 {
					counts[c] = uint32(1 + rng.Intn(4))
				}
			}
			traffic[ip] = counts
			truth[ip] = fmt.Sprintf("farm-%d", farm)
		}
	}

	// Background surfers: a few cookies each, drawn from a shared pool so
	// some accidental overlap (the source of false positives) exists.
	for i := 0; i < 400; i++ {
		counts := map[string]uint32{}
		for j := 0; j < 1+rng.Intn(4); j++ {
			counts[fmt.Sprintf("cookie-web-%d", rng.Intn(600))] = uint32(1 + rng.Intn(2))
		}
		traffic[fmt.Sprintf("home-ip-%d", i)] = counts
	}

	join := func(minActivity int) *vsmartjoin.Result {
		d := vsmartjoin.NewDataset()
		for ip, counts := range traffic {
			if observations(counts) >= minActivity {
				d.Add(ip, counts)
			}
		}
		res, err := vsmartjoin.AllPairs(d, vsmartjoin.Options{
			Measure:   "ruzicka",
			Threshold: 0.1, // low threshold: maximum coverage
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	res := join(0)
	fmt.Printf("all IPs: %d similar pairs at t=0.1\n\n", len(res.Pairs))
	report(res, truth)

	// The paper's fix: instead of raising the threshold (losing coverage),
	// drop IPs with fewer than 50 cookie observations — real proxies are
	// busy, accidental look-alikes are not.
	fmt.Println("\n--- after filtering IPs with < 50 cookie observations ---")
	fres := join(50)
	fmt.Printf("busy IPs: %d similar pairs at t=0.1\n\n", len(fres.Pairs))
	report(fres, truth)
}

func observations(counts map[string]uint32) int {
	total := 0
	for _, n := range counts {
		total += int(n)
	}
	return total
}

// report prints the discovered communities and their composition against
// the planted ground truth.
func report(res *vsmartjoin.Result, truth map[string]string) {
	for i, community := range res.Communities() {
		farms := map[string]int{}
		for _, ip := range community {
			farms[orBackground(truth, ip)]++
		}
		fmt.Printf("community %d (%d IPs): %v\n", i+1, len(community), farms)
		if i >= 7 {
			fmt.Println("... (remaining communities elided)")
			break
		}
	}
}

func orBackground(truth map[string]string, ip string) string {
	if farm, ok := truth[ip]; ok {
		return farm
	}
	return "background"
}
