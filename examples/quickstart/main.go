// Quickstart: find similar IPs from their cookie multisets — the paper's
// running example, in a dozen lines.
package main

import (
	"fmt"
	"log"

	"vsmartjoin"
)

func main() {
	d := vsmartjoin.NewDataset()
	// Each IP is a multiset of cookies: multiplicity = how often the
	// cookie appeared with the IP.
	d.Add("ip-10.0.0.1", map[string]uint32{"cookie-a": 5, "cookie-b": 3, "cookie-c": 1})
	d.Add("ip-10.0.0.2", map[string]uint32{"cookie-a": 4, "cookie-b": 4, "cookie-c": 1})
	d.Add("ip-10.0.0.3", map[string]uint32{"cookie-a": 5, "cookie-b": 2, "cookie-d": 2})
	d.Add("ip-192.168.1.9", map[string]uint32{"cookie-x": 7, "cookie-y": 2})
	d.Add("ip-192.168.1.10", map[string]uint32{"cookie-x": 6, "cookie-y": 3})
	d.Add("ip-172.16.0.5", map[string]uint32{"cookie-q": 1})

	res, err := vsmartjoin.AllPairs(d, vsmartjoin.Options{
		Measure:   "ruzicka", // the multiset generalization of Jaccard
		Threshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("similar pairs (Ruzicka >= 0.5):")
	for _, p := range res.Pairs {
		fmt.Printf("  %-16s ~ %-16s  %.3f\n", p.A, p.B, p.Similarity)
	}

	fmt.Println("\ndiscovered communities (candidate load balancers):")
	for i, c := range res.Communities() {
		fmt.Printf("  community %d: %v\n", i+1, c)
	}

	fmt.Printf("\nsimulated cluster time: %.1fs over %d MapReduce jobs\n",
		res.Stats.TotalSeconds, res.Stats.Jobs)
}
