// Docsim finds near-duplicate documents with shingle sets and the Jaccard
// measure — the classic application of Broder's syntactic clustering that
// the paper's related work surveys (§6.1), solved here exactly with the
// V-SMART-Join pipeline instead of approximately with MinHash.
package main

import (
	"fmt"
	"log"
	"strings"

	"vsmartjoin"
)

var documents = map[string]string{
	"press-release-v1": `the acme corporation announced record quarterly
		earnings today citing strong demand for its cloud products and
		continued growth in international markets`,
	"press-release-v2": `the acme corporation announced record quarterly
		earnings today citing strong demand for its cloud products and
		continued growth across international markets`,
	"press-release-final": `acme corporation announced record quarterly
		earnings citing very strong demand for cloud products and rapid
		growth in international markets this quarter`,
	"blog-post": `our favorite recipes this week include a hearty lentil
		soup a quick weeknight pasta and a surprisingly easy sourdough
		loaf for beginners`,
	"blog-post-repost": `our favorite recipes this week include a hearty
		lentil soup a quick weeknight pasta and a surprisingly easy
		sourdough loaf for beginners enjoy`,
	"unrelated-memo": `the facilities team will be repainting the third
		floor hallway on saturday please remove personal items from the
		walls before friday evening`,
}

// shingles slides a w-word window over the text (the paper's fixed-length
// word sequences).
func shingles(text string, w int) []string {
	words := strings.Fields(strings.ToLower(text))
	if len(words) < w {
		return []string{strings.Join(words, " ")}
	}
	out := make([]string, 0, len(words)-w+1)
	for i := 0; i+w <= len(words); i++ {
		out = append(out, strings.Join(words[i:i+w], " "))
	}
	return out
}

func main() {
	d := vsmartjoin.NewDataset()
	for name, text := range documents {
		d.AddSet(name, shingles(text, 3))
	}

	res, err := vsmartjoin.AllPairs(d, vsmartjoin.Options{
		Measure:   "jaccard",
		Threshold: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("near-duplicate documents (3-shingle Jaccard >= 0.25):")
	for _, p := range res.Pairs {
		fmt.Printf("  %-22s ~ %-22s %.3f\n", p.A, p.B, p.Similarity)
	}

	fmt.Println("\nduplicate clusters:")
	for i, c := range res.Communities() {
		fmt.Printf("  cluster %d: %v\n", i+1, c)
	}
}
