// Adfraud detects coalitions of click-fraud publishers — the DETECTIVES
// application the paper cites (§1, [22]). Publishers that share an
// unusually similar multiset of clicking IPs are likely driving traffic
// from the same botnet; honest publishers draw independent audiences.
//
// The example uses the multiset cosine measure: multiplicities matter,
// because a bot clicking one publisher 50 times is stronger evidence than
// 50 distinct visitors clicking once.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"vsmartjoin"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	d := vsmartjoin.NewDataset()

	// A botnet of 60 IPs shared by one coalition of 5 publishers. Each
	// coalition member receives clicks from most bots, with high counts.
	botnet := make([]string, 60)
	for i := range botnet {
		botnet[i] = fmt.Sprintf("bot-%d", i)
	}
	for m := 0; m < 5; m++ {
		clicks := map[string]uint32{}
		for _, ip := range botnet {
			if rng.Float64() < 0.9 {
				clicks[ip] = uint32(5 + rng.Intn(20))
			}
		}
		// A sprinkle of organic traffic to make it look legitimate.
		for j := 0; j < 10; j++ {
			clicks[fmt.Sprintf("user-%d", rng.Intn(5000))] = 1
		}
		d.Add(fmt.Sprintf("coalition-pub-%d", m), clicks)
	}

	// Honest publishers: independent organic audiences.
	for p := 0; p < 200; p++ {
		clicks := map[string]uint32{}
		audience := 20 + rng.Intn(60)
		for j := 0; j < audience; j++ {
			clicks[fmt.Sprintf("user-%d", rng.Intn(5000))] = uint32(1 + rng.Intn(2))
		}
		d.Add(fmt.Sprintf("publisher-%d", p), clicks)
	}

	res, err := vsmartjoin.AllPairs(d, vsmartjoin.Options{
		Measure:   "cosine", // multiset cosine: multiplicity-sensitive
		Threshold: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("suspicious publisher pairs (multiset cosine >= 0.4): %d\n\n", len(res.Pairs))
	for _, p := range res.Pairs {
		fmt.Printf("  %-18s ~ %-18s %.3f\n", p.A, p.B, p.Similarity)
	}

	fmt.Println("\ncoalitions (connected components):")
	for i, c := range res.Communities() {
		fmt.Printf("  coalition %d: %v\n", i+1, c)
	}
	if len(res.Communities()) == 0 {
		fmt.Println("  none found")
	}
}
