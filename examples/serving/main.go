// Serving walks through the online half of the system: where AllPairs
// batch-joins a frozen dataset, vsmartjoin.Index answers similarity
// queries against a live one — entities stream in and out while lookups
// run, the workload of a proxy-detection or ad-fraud service that cannot
// afford to re-join millions of users on every request.
//
// The walkthrough builds an index over synthetic IP→cookie traffic, runs
// threshold and top-k queries, mutates the index under the queries'
// feet, and finishes with the pruning funnel the index stats expose. The
// same index is served over HTTP by cmd/vsmartjoind.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"vsmartjoin"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A proxy farm: member IPs share a cookie pool, because the same
	// surfers egress through all of them. Plus unrelated background IPs.
	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: "ruzicka"})
	if err != nil {
		log.Fatal(err)
	}
	pool := make([]string, 50)
	for i := range pool {
		pool[i] = fmt.Sprintf("cookie-farm-%d", i)
	}
	farm := func() map[string]uint32 {
		counts := map[string]uint32{}
		for _, c := range pool {
			if rng.Float64() < 0.8 {
				counts[c] = uint32(1 + rng.Intn(4))
			}
		}
		return counts
	}
	for member := 0; member < 5; member++ {
		if err := ix.Add(fmt.Sprintf("proxy-ip-%d", member), farm()); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		counts := map[string]uint32{}
		for j := 0; j < 1+rng.Intn(5); j++ {
			counts[fmt.Sprintf("cookie-web-%d", rng.Intn(800))] = uint32(1 + rng.Intn(3))
		}
		if err := ix.Add(fmt.Sprintf("surfer-ip-%d", i), counts); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d live entities\n\n", ix.Len())

	// 1. Threshold query: which indexed IPs look like siblings of an
	// already-indexed proxy member?
	matches, err := ix.QueryEntity("proxy-ip-0", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entities similar to proxy-ip-0 at t=0.3: %d\n", len(matches))
	for _, m := range matches {
		fmt.Printf("  %-14s %.3f\n", m.Entity, m.Similarity)
	}

	// 2. Ad-hoc query: a fresh observation that is not (yet) indexed.
	// Unknown cookies are fine — they dilute the similarity but cannot
	// match, exactly as they would in the batch join.
	observed := farm()
	observed["cookie-never-seen"] = 9
	top := ix.QueryTopK(observed, 3)
	fmt.Printf("\ntop-3 for a fresh observation:\n")
	for _, m := range top {
		fmt.Printf("  %-14s %.3f\n", m.Entity, m.Similarity)
	}

	// 3. The index is live: retire an IP and re-run the same query.
	if _, err := ix.Remove(top[0].Entity); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter removing %s, top-3 becomes:\n", top[0].Entity)
	for _, m := range ix.QueryTopK(observed, 3) {
		fmt.Printf("  %-14s %.3f\n", m.Entity, m.Similarity)
	}

	// 4. The pruning funnel: posting-list probes → candidates → exact
	// verifications → results. The prefix and length filters are what
	// keep a query from touching all entities.
	s := ix.Stats()
	fmt.Printf("\nindex stats: %d entities, %d elements, %d postings\n",
		s.Entities, s.Elements, s.Postings)
	fmt.Printf("query funnel: %d probes -> %d candidates (%d length-pruned) -> %d verified -> %d results\n",
		s.Probes, s.Candidates, s.LengthPruned, s.Verified, s.Results)

	// 5. Durability + sharding: the same index, partitioned 4 ways with a
	// write-ahead log under dir. Kill -9 at any point and reopening the
	// dir recovers every completed mutation — here we just drop the
	// handle without Close, the moral equivalent.
	dir, err := os.MkdirTemp("", "vsmartjoin-serving-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	opts := vsmartjoin.IndexOptions{Measure: "ruzicka", Shards: 4, Dir: dir, SnapshotEvery: 64}
	func() { // scope the doomed handle: it "crashes" without Close
		durable, err := vsmartjoin.NewIndex(opts)
		if err != nil {
			log.Fatal(err)
		}
		for member := 0; member < 5; member++ {
			if err := durable.Add(fmt.Sprintf("proxy-ip-%d", member), farm()); err != nil {
				log.Fatal(err)
			}
		}
	}()

	recovered, err := vsmartjoin.NewIndex(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	fmt.Printf("\nafter simulated crash, recovered %d entities from %s (%d shards)\n",
		recovered.Len(), dir, recovered.Stats().Shards)

	// 6. Bulk bootstrap: cold-starting a corpus through Add writes one
	// WAL record per entity; BuildIndexFiles runs it through the batch
	// MapReduce machinery instead and writes each shard's snapshot file
	// directly. The directory opens with nothing to replay and accepts
	// further durable mutations.
	corpus := vsmartjoin.NewDataset()
	for member := 0; member < 5; member++ {
		corpus.Add(fmt.Sprintf("proxy-ip-%d", member), farm())
	}
	for i := 0; i < 300; i++ {
		counts := map[string]uint32{}
		for j := 0; j < 1+rng.Intn(5); j++ {
			counts[fmt.Sprintf("cookie-web-%d", rng.Intn(800))] = uint32(1 + rng.Intn(3))
		}
		corpus.Add(fmt.Sprintf("surfer-ip-%d", i), counts)
	}
	bulkDir, err := os.MkdirTemp("", "vsmartjoin-bulk-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(bulkDir)
	bulkDir += "/idx" // BuildIndexFiles wants a fresh path
	bs, err := vsmartjoin.BuildIndexFiles(corpus, vsmartjoin.IndexOptions{Measure: "ruzicka", Shards: 4, Dir: bulkDir})
	if err != nil {
		log.Fatal(err)
	}
	bulk, err := vsmartjoin.OpenIndex(vsmartjoin.IndexOptions{Dir: bulkDir})
	if err != nil {
		log.Fatal(err)
	}
	defer bulk.Close()
	fmt.Printf("\nbulk-built %d entities into %d shard snapshots; opened %d at generation %d with no WAL replay\n",
		bs.Entities, bs.Shards, bulk.Len(), bulk.Generation())

	fmt.Println("\nserve the same index over HTTP with: go run ./cmd/vsmartjoind -data-dir <dir> -shards 4")
}
