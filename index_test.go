package vsmartjoin

import (
	"math"
	"sync"
	"testing"
)

// mustAdd and mustRemove check the mutation errors the durability
// contract requires handling even in tests: an ignored Add error means
// the test asserts nothing about the write it thinks it made.
func mustAdd(t testing.TB, ix *Index, name string, counts map[string]uint32) {
	t.Helper()
	if err := ix.Add(name, counts); err != nil {
		t.Fatalf("Add(%s): %v", name, err)
	}
}

func mustRemove(t testing.TB, ix *Index, name string) {
	t.Helper()
	if _, err := ix.Remove(name); err != nil {
		t.Fatalf("Remove(%s): %v", name, err)
	}
}

func TestIndexQuickstart(t *testing.T) {
	ix, err := NewIndex(IndexOptions{Measure: "ruzicka"})
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, ix, "ip-1", map[string]uint32{"a": 3, "b": 1, "c": 2})
	mustAdd(t, ix, "ip-2", map[string]uint32{"a": 2, "b": 2, "c": 2})
	mustAdd(t, ix, "ip-3", map[string]uint32{"z": 9, "y": 4})
	if ix.Len() != 3 {
		t.Fatalf("len: %d", ix.Len())
	}
	got, err := ix.QueryThreshold(map[string]uint32{"a": 3, "b": 1, "c": 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Entity != "ip-1" || got[0].Similarity != 1 || got[1].Entity != "ip-2" {
		t.Fatalf("matches: %v", got)
	}
	// Unknown query elements dilute the similarity but never error.
	diluted, err := ix.QueryThreshold(map[string]uint32{"a": 3, "never-seen": 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range diluted {
		if m.Similarity >= got[1].Similarity {
			t.Fatalf("unknown mass did not dilute: %v", diluted)
		}
	}
}

func TestIndexQueryEntity(t *testing.T) {
	ix, err := NewIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, ix, "a", map[string]uint32{"x": 2, "y": 2})
	mustAdd(t, ix, "b", map[string]uint32{"x": 2, "y": 2})
	got, err := ix.QueryEntity("a", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Entity != "b" || got[0].Similarity != 1 {
		t.Fatalf("matches: %v", got)
	}
	if _, err := ix.QueryEntity("missing", 0.5); err == nil {
		t.Fatal("missing entity should error")
	}
}

func TestIndexUpsertAndRemove(t *testing.T) {
	ix, err := NewIndex(IndexOptions{Measure: "jaccard"})
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, ix, "doc", map[string]uint32{"w1": 1, "w2": 1})
	mustAdd(t, ix, "doc", map[string]uint32{"w9": 1}) // replace, not merge
	got, err := ix.QueryThreshold(map[string]uint32{"w1": 1, "w2": 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("old contents still match: %v", got)
	}
	got, err = ix.QueryThreshold(map[string]uint32{"w9": 1}, 0.9)
	if err != nil || len(got) != 1 || got[0].Entity != "doc" {
		t.Fatalf("new contents: %v %v", got, err)
	}
	if removed, err := ix.Remove("doc"); err != nil || !removed {
		t.Fatalf("remove: %v %v", removed, err)
	}
	if removed, err := ix.Remove("doc"); err != nil || removed {
		t.Fatalf("re-remove: %v %v", removed, err)
	}
	if ix.Len() != 0 {
		t.Fatalf("len after remove: %d", ix.Len())
	}
}

func TestIndexTopK(t *testing.T) {
	ix, err := NewIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, ix, "near", map[string]uint32{"a": 4, "b": 4})
	mustAdd(t, ix, "mid", map[string]uint32{"a": 4, "c": 4})
	mustAdd(t, ix, "far", map[string]uint32{"a": 1, "z": 9})
	got := ix.QueryTopK(map[string]uint32{"a": 4, "b": 4}, 2)
	if len(got) != 2 || got[0].Entity != "near" || got[1].Entity != "mid" {
		t.Fatalf("topk: %v", got)
	}
	if got[0].Similarity != 1 || got[1].Similarity >= got[0].Similarity {
		t.Fatalf("topk order: %v", got)
	}
}

func TestBuildIndexFromDataset(t *testing.T) {
	d := demoDataset()
	ix, err := BuildIndex(d, IndexOptions{Measure: "ruzicka"})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != d.Len() {
		t.Fatalf("len: %d vs %d", ix.Len(), d.Len())
	}
	got, err := ix.QueryEntity("ip-1", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Entity != "ip-2" {
		t.Fatalf("matches: %v", got)
	}

	// Numbered datasets load too, with synthesized names.
	n := NewDataset()
	n.AddByID(10, map[uint64]uint32{1: 1, 2: 1})
	n.AddByID(20, map[uint64]uint32{1: 1, 2: 1})
	nx, err := BuildIndex(n, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nm, err := nx.QueryEntity("10", 0.9)
	if err != nil || len(nm) != 1 || nm[0].Entity != "20" {
		t.Fatalf("numbered: %v %v", nm, err)
	}

	// The empty string is a legitimate element name and must survive the
	// round trip through BuildIndex's name translation.
	e := NewDataset()
	e.Add("p", map[string]uint32{"": 2})
	e.Add("q", map[string]uint32{"": 2})
	ex, err := BuildIndex(e, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	em, err := ex.QueryThreshold(map[string]uint32{"": 2}, 0.9)
	if err != nil || len(em) != 2 {
		t.Fatalf("empty-string element: %v %v", em, err)
	}
}

func TestIndexValidation(t *testing.T) {
	if _, err := NewIndex(IndexOptions{Measure: "nope"}); err == nil {
		t.Fatal("unknown measure should fail")
	}
	ix, err := NewIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := ix.QueryThreshold(map[string]uint32{"a": 1}, bad); err == nil {
			t.Fatalf("threshold %v should fail", bad)
		}
		if _, err := ix.QueryEntity("a", bad); err == nil {
			t.Fatalf("entity threshold %v should fail", bad)
		}
	}
}

func TestIndexStatsSnapshot(t *testing.T) {
	ix, err := NewIndex(IndexOptions{Measure: "dice"})
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, ix, "a", map[string]uint32{"x": 1, "y": 2})
	mustAdd(t, ix, "b", map[string]uint32{"x": 3})
	if _, err := ix.QueryThreshold(map[string]uint32{"x": 1}, 0.1); err != nil {
		t.Fatal(err)
	}
	s := ix.Stats()
	if s.Measure != "dice" || s.Entities != 2 || s.Elements != 2 || s.Adds != 2 || s.Queries != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestIndexAddRemoveRace hammers Add/Remove of the same name from many
// goroutines: the name tables and the inner index must mutate as an
// atomic pair, or interleavings leave nameless ghost entities behind
// (Len never returns to 0 and queries verify entities that resolve to
// nothing).
func TestIndexAddRemoveRace(t *testing.T) {
	ix, err := NewIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				// t.Fatal is off-limits in a non-test goroutine.
				if err := ix.Add("x", map[string]uint32{"a": 1}); err != nil {
					t.Error(err)
				}
				if _, err := ix.Remove("x"); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	mustRemove(t, ix, "x")
	if n := ix.Len(); n != 0 {
		t.Fatalf("ghost entities after churn: %d", n)
	}
}

// TestIndexConcurrentUse is the public-API race gate: names, dict, and
// inner index all churn while queries run.
func TestIndexConcurrentUse(t *testing.T) {
	ix, err := NewIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	elems := []string{"a", "b", "c", "d", "e", "f"}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				name := string(rune('w' + g%2))
				counts := map[string]uint32{
					elems[(g+i)%len(elems)]:   uint32(i%5 + 1),
					elems[(g+i+1)%len(elems)]: 1,
				}
				switch i % 4 {
				case 0, 1:
					if err := ix.Add(name+elems[i%len(elems)], counts); err != nil {
						t.Error(err)
					}
				case 2:
					if _, err := ix.QueryThreshold(counts, 0.3); err != nil {
						t.Error(err)
					}
					ix.QueryTopK(counts, 3)
				case 3:
					if _, err := ix.Remove(name + elems[i%len(elems)]); err != nil {
						t.Error(err)
					}
					ix.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}
