package vsmartjoin

// The differential harness: every Options.Algorithm × every Measure ×
// thresholds {0, 0.3, 0.5, 0.9} on seeded randomized datasets must produce
// the exact pair set of an O(n²) brute-force oracle built on the public
// Similarity function, and the online Index.QueryThreshold must agree with
// AllPairs restricted to the query entity. This is the end-to-end
// exactness gate of the whole system: the batch MR pipelines, the online
// index with its pruning bounds, and the public plumbing around both.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// diffAlgorithms and diffMeasures enumerate the full public surface.
var diffAlgorithms = []string{AlgorithmOnlineAggregation, AlgorithmLookup, AlgorithmSharding}

var diffMeasures = []string{
	"ruzicka", "jaccard", "dice", "set-dice",
	"cosine", "set-cosine", "vector-cosine", "overlap",
}

var diffThresholds = []float64{0, 0.3, 0.5, 0.9}

// randomEntities synthesizes a seeded dataset as public-API inputs: entity
// name → element multiplicities. Some entity pairs share elements heavily
// (cluster structure) so every threshold bucket is populated.
func randomEntities(rng *rand.Rand, n, alphabet, maxLen, maxCount int) map[string]map[string]uint32 {
	out := make(map[string]map[string]uint32, n)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(maxLen)
		counts := make(map[string]uint32, l)
		base := rng.Intn(alphabet)
		for j := 0; j < l; j++ {
			// Cluster structure: half the elements come from a narrow band
			// around base, so near-duplicates exist at every threshold.
			var elem int
			if j%2 == 0 {
				elem = (base + rng.Intn(4)) % alphabet
			} else {
				elem = rng.Intn(alphabet)
			}
			counts[fmt.Sprintf("e%d", elem)] += uint32(1 + rng.Intn(maxCount))
		}
		out[fmt.Sprintf("entity-%03d", i)] = counts
	}
	return out
}

func datasetOf(entities map[string]map[string]uint32) *Dataset {
	d := NewDataset()
	names := make([]string, 0, len(entities))
	for name := range entities {
		names = append(names, name)
	}
	// Dataset construction must not depend on map order (determinism of
	// the simulated runs); sort like the CLI's first-seen ordering would.
	sort.Strings(names)
	for _, name := range names {
		d.Add(name, entities[name])
	}
	return d
}

// sharesElement reports whether two entities overlap in at least one
// element — the oracle's candidate condition: algorithms that pair
// entities through shared elements can never see disjoint pairs.
func sharesElement(a, b map[string]uint32) bool {
	for e, c := range a {
		if c > 0 && b[e] > 0 {
			return true
		}
	}
	return false
}

// oraclePairs brute-forces the expected pair set through the public
// Similarity function.
func oraclePairs(t *testing.T, entities map[string]map[string]uint32, measure string, thr float64) map[[2]string]float64 {
	t.Helper()
	names := make([]string, 0, len(entities))
	for name := range entities {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[[2]string]float64)
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := names[i], names[j]
			if !sharesElement(entities[a], entities[b]) {
				continue
			}
			sim, err := Similarity(measure, entities[a], entities[b])
			if err != nil {
				t.Fatal(err)
			}
			if sim+1e-12 >= thr {
				out[[2]string{a, b}] = sim
			}
		}
	}
	return out
}

// TestDifferentialAllPairs is the batch harness: all algorithms × measures
// × thresholds against the oracle.
func TestDifferentialAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	trials := 2
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		entities := randomEntities(rng, 36, 30, 8, 4)
		d := datasetOf(entities)
		for _, measure := range diffMeasures {
			for _, thr := range diffThresholds {
				want := oraclePairs(t, entities, measure, thr)
				for _, alg := range diffAlgorithms {
					tag := fmt.Sprintf("trial %d %s/%s t=%v", trial, alg, measure, thr)
					res, err := AllPairs(d, Options{
						Measure: measure, Threshold: thr, Algorithm: alg, Machines: 4,
					})
					if err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
					if len(res.Pairs) != len(want) {
						t.Fatalf("%s: got %d pairs want %d", tag, len(res.Pairs), len(want))
					}
					for _, p := range res.Pairs {
						sim, ok := want[[2]string{p.A, p.B}]
						if !ok {
							t.Fatalf("%s: unexpected pair %v", tag, p)
						}
						if d := sim - p.Similarity; d < -1e-9 || d > 1e-9 {
							t.Fatalf("%s: pair %s~%s sim %v want %v", tag, p.A, p.B, p.Similarity, sim)
						}
					}
				}
			}
		}
	}
}

// TestDifferentialIndexVsAllPairs is the online-vs-batch harness:
// Index.QueryThreshold for each entity must equal the AllPairs result
// restricted to that entity, for every measure and threshold.
func TestDifferentialIndexVsAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	entities := randomEntities(rng, 40, 28, 8, 4)
	d := datasetOf(entities)
	names := make([]string, 0, len(entities))
	for name := range entities {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, measure := range diffMeasures {
		ix, err := BuildIndex(d, IndexOptions{Measure: measure})
		if err != nil {
			t.Fatal(err)
		}
		for _, thr := range diffThresholds {
			res, err := AllPairs(d, Options{Measure: measure, Threshold: thr, Machines: 4})
			if err != nil {
				t.Fatal(err)
			}
			// Batch result, re-keyed per entity.
			perEntity := make(map[string]map[string]float64)
			for _, p := range res.Pairs {
				for _, side := range [][2]string{{p.A, p.B}, {p.B, p.A}} {
					m := perEntity[side[0]]
					if m == nil {
						m = make(map[string]float64)
						perEntity[side[0]] = m
					}
					m[side[1]] = p.Similarity
				}
			}
			for _, name := range names {
				tag := fmt.Sprintf("%s t=%v q=%s", measure, thr, name)
				got, err := ix.QueryEntity(name, thr)
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				want := perEntity[name]
				if len(got) != len(want) {
					t.Fatalf("%s: index %d matches, batch %d\nindex: %v\nbatch: %v",
						tag, len(got), len(want), got, want)
				}
				for _, m := range got {
					sim, ok := want[m.Entity]
					if !ok {
						t.Fatalf("%s: index-only match %v", tag, m)
					}
					if d := sim - m.Similarity; d < -1e-9 || d > 1e-9 {
						t.Fatalf("%s: match %s sim %v batch %v", tag, m.Entity, m.Similarity, sim)
					}
				}
			}
		}
	}
}

// TestDifferentialIndexIncremental re-runs the online-vs-batch comparison
// after mutations: the index after removals and re-adds must answer like a
// batch join over the surviving dataset.
func TestDifferentialIndexIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	entities := randomEntities(rng, 30, 24, 7, 3)
	ix, err := BuildIndex(datasetOf(entities), IndexOptions{Measure: "ruzicka"})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entities))
	for name := range entities {
		names = append(names, name)
	}
	sort.Strings(names)

	// Remove a third, replace (upsert) another third with fresh contents.
	for i, name := range names {
		switch i % 3 {
		case 0:
			mustRemove(t, ix, name)
			delete(entities, name)
		case 1:
			fresh := randomEntities(rng, 1, 24, 7, 3)
			for _, counts := range fresh {
				mustAdd(t, ix, name, counts)
				entities[name] = counts
			}
		}
	}

	const thr = 0.3
	d := datasetOf(entities)
	res, err := AllPairs(d, Options{Measure: "ruzicka", Threshold: thr, Machines: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[[2]string]float64, len(res.Pairs))
	for _, p := range res.Pairs {
		want[[2]string{p.A, p.B}] = p.Similarity
	}
	got := make(map[[2]string]float64)
	for name := range entities {
		ms, err := ix.QueryEntity(name, thr)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			key := [2]string{name, m.Entity}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			got[key] = m.Similarity
		}
	}
	if len(got) != len(want) {
		t.Fatalf("after churn: index %d pairs, batch %d\nindex: %v\nbatch: %v", len(got), len(want), got, want)
	}
	for key, sim := range want {
		gsim, ok := got[key]
		if !ok || gsim-sim > 1e-9 || sim-gsim > 1e-9 {
			t.Fatalf("after churn: pair %v index %v batch %v (present %v)", key, gsim, sim, ok)
		}
	}
}
