package vsmartjoin

// The bulk-build gate: a data dir written offline by BuildIndexFiles
// must be indistinguishable — query for query, score for score, mutation
// for mutation — from an index built by the same Adds through the
// serving path. The differential sweep runs shard counts {1, 3, 8}
// against several measures, checks that opening a bulk-built dir
// replays zero WAL records, and continues mutating after open so the
// write-ahead logs demonstrably resume on top of bulk-built snapshots.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// walFiles returns every wal-* file under a data dir with its size.
func walFiles(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), "wal-") {
			st, err := d.Info()
			if err != nil {
				return err
			}
			out[path] = st.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBulkBuiltEqualsIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	entities := randomEntities(rng, 60, 30, 8, 4)
	d := datasetOf(entities)
	var probes []map[string]uint32
	for _, counts := range entities {
		probes = append(probes, counts)
		if len(probes) == 6 {
			break
		}
	}

	for _, measure := range []string{"ruzicka", "jaccard", "set-cosine", "overlap"} {
		for _, shards := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", measure, shards), func(t *testing.T) {
				opts := IndexOptions{Measure: measure, Shards: shards}
				oracle, err := BuildIndex(d, opts)
				if err != nil {
					t.Fatal(err)
				}

				dir := filepath.Join(t.TempDir(), "bulk")
				opts.Dir = dir
				bs, err := BuildIndexFiles(d, opts)
				if err != nil {
					t.Fatal(err)
				}
				if bs.Entities != int64(d.Len()) || bs.Shards != shards {
					t.Fatalf("build stats %+v, want %d entities in %d shards", bs, d.Len(), shards)
				}
				bulk, err := OpenIndex(opts)
				if err != nil {
					t.Fatal(err)
				}

				// The whole point of the bulk path: nothing to replay.
				// Every shard must open at generation 1 with an empty WAL.
				wals := walFiles(t, dir)
				if len(wals) != shards {
					t.Fatalf("%d wal files for %d shards: %v", len(wals), shards, wals)
				}
				for path, size := range wals {
					if size != 0 {
						t.Fatalf("bulk-built dir has %d WAL bytes to replay in %s", size, path)
					}
				}
				if g := bulk.Generation(); g != 1 {
					t.Fatalf("bulk-built index opened at generation %d, want 1", g)
				}
				// Bootstrapped entities are mutations: a daemon serving a
				// bulk-built dir must not report Adds: 0 (and through it
				// /readyz's mutation counter) while serving d.Len() entities.
				if st := bulk.Stats(); st.Adds != int64(d.Len()) {
					t.Fatalf("bulk-built index reports Adds %d, want %d", st.Adds, d.Len())
				}

				// Query-after-open: full surface equality with the oracle.
				mustAgree(t, "bulk vs incremental", bulk, oracle, probes)
				for name := range entities {
					g, err := bulk.QueryEntity(name, 0.3)
					if err != nil {
						t.Fatal(err)
					}
					w, err := oracle.QueryEntity(name, 0.3)
					if err != nil {
						t.Fatal(err)
					}
					if len(g) != len(w) {
						t.Fatalf("QueryEntity(%s): %d vs %d matches", name, len(g), len(w))
					}
					for i := range g {
						if g[i] != w[i] {
							t.Fatalf("QueryEntity(%s) match %d: %v vs %v", name, i, g[i], w[i])
						}
					}
				}

				// Mutate-after-open: the WAL resumes on top of the bulk
				// snapshots. Upserts, removes, and brand-new entities (which
				// exercise ID assignment continuing past the bulk range).
				i := 0
				for name := range entities {
					switch i % 3 {
					case 0:
						if _, err := bulk.Remove(name); err != nil {
							t.Fatal(err)
						}
						if _, err := oracle.Remove(name); err != nil {
							t.Fatal(err)
						}
					case 1:
						counts := map[string]uint32{fmt.Sprintf("e%d", i%30): uint32(i%4 + 1)}
						if err := bulk.Add(name, counts); err != nil {
							t.Fatal(err)
						}
						if err := oracle.Add(name, counts); err != nil {
							t.Fatal(err)
						}
					}
					i++
				}
				for j := 0; j < 5; j++ {
					name := fmt.Sprintf("fresh-%d", j)
					counts := map[string]uint32{fmt.Sprintf("e%d", j): 2, fmt.Sprintf("e%d", j+9): 1}
					if err := bulk.Add(name, counts); err != nil {
						t.Fatal(err)
					}
					if err := oracle.Add(name, counts); err != nil {
						t.Fatal(err)
					}
				}
				mustAgree(t, "bulk churned", bulk, oracle, probes)

				// Crash (no Close) and recover: snapshots + resumed WAL.
				reopened, err := OpenIndex(opts)
				if err != nil {
					t.Fatal(err)
				}
				defer reopened.Close()
				mustAgree(t, "bulk reopened", reopened, oracle, probes)
			})
		}
	}
}

// TestBulkBuildValidation covers the refusal surface of the bulk path.
func TestBulkBuildValidation(t *testing.T) {
	d := datasetOf(map[string]map[string]uint32{"a": {"x": 1}})
	if _, err := BuildIndexFiles(d, IndexOptions{}); err == nil {
		t.Fatal("BuildIndexFiles without Dir should fail")
	}
	if _, err := BuildIndexFiles(d, IndexOptions{Dir: t.TempDir(), Measure: "no-such"}); err == nil {
		t.Fatal("unknown measure should fail")
	}
	if _, err := BuildIndexFiles(d, IndexOptions{Dir: t.TempDir(), Shards: -1}); err == nil {
		t.Fatal("negative shards should fail")
	}

	// Refuse to overwrite: anything already in the target dir.
	occupied := t.TempDir()
	if err := os.WriteFile(filepath.Join(occupied, "keep"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildIndexFiles(d, IndexOptions{Dir: occupied}); err == nil {
		t.Fatal("non-empty target should fail")
	}

	// An empty pre-created directory is fine (mkdir-then-build flows).
	empty := t.TempDir()
	if _, err := BuildIndexFiles(d, IndexOptions{Dir: empty, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenIndex(IndexOptions{Dir: empty, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Len() != 1 {
		t.Fatalf("len %d", ix.Len())
	}
}

// TestOpenIndexLayout covers OpenIndex/NewIndex against the on-disk
// shard layout: missing dirs, shard-count adoption and mismatch.
func TestOpenIndexLayout(t *testing.T) {
	if _, err := OpenIndex(IndexOptions{}); err == nil {
		t.Fatal("OpenIndex without Dir should fail")
	}
	if _, err := OpenIndex(IndexOptions{Dir: filepath.Join(t.TempDir(), "absent")}); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("missing dir: %v", err)
	}
	if _, err := OpenIndex(IndexOptions{Dir: t.TempDir()}); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("empty dir: %v", err)
	}

	d := datasetOf(map[string]map[string]uint32{
		"a": {"x": 1, "y": 2},
		"b": {"x": 1},
		"c": {"z": 3},
	})
	dir := filepath.Join(t.TempDir(), "idx")
	if _, err := BuildIndexFiles(d, IndexOptions{Dir: dir, Shards: 3}); err != nil {
		t.Fatal(err)
	}

	// Shards: 0 adopts the on-disk count; a mismatch is refused.
	ix, err := OpenIndex(IndexOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().Shards; got != 3 {
		t.Fatalf("adopted %d shards, want 3", got)
	}
	ix.Close()
	if _, err := OpenIndex(IndexOptions{Dir: dir, Shards: 2}); err == nil {
		t.Fatal("shard-count mismatch should fail")
	}
	if _, err := NewIndex(IndexOptions{Dir: dir, Shards: 2}); err == nil {
		t.Fatal("NewIndex must refuse a mismatched shard count too")
	}

	// A legacy flat layout (generation files directly in the dir) is a
	// hard error, not an empty index.
	legacy := t.TempDir()
	//lint:vsmart-allow framesafety test plants a bogus legacy snap file by hand to prove NewIndex rejects the flat layout
	if err := os.WriteFile(filepath.Join(legacy, "snap-00000001"), []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewIndex(IndexOptions{Dir: legacy}); err == nil {
		t.Fatal("legacy layout should fail")
	}
}

// TestCrossShardNameConflictRecovery pins the recovery merge rule for
// the one inconsistency a machine crash can leave behind with per-shard
// logs: a name's remove lost from one shard's un-fsynced WAL tail while
// its re-add (a higher ID, in another shard) survived. The higher ID
// must win and the stale entity must not resurrect.
func TestCrossShardNameConflictRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := IndexOptions{Measure: "ruzicka", Dir: dir, Shards: 2, SnapshotEvery: -1}
	ix, err := NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Drive add/remove/re-add of one name until the two generations of
	// "victim" land in different shard logs (IDs grow by burning filler
	// adds, so routing eventually differs). appendAndLocate identifies
	// the shard log a mutation reached by diffing WAL sizes.
	filler := 0
	appendAndLocate := func(mutate func()) string {
		before := walFiles(t, dir)
		mutate()
		for path, size := range walFiles(t, dir) {
			if size > before[path] {
				return path
			}
		}
		t.Fatal("no wal grew")
		return ""
	}

	firstShard := appendAndLocate(func() {
		if err := ix.Add("victim", map[string]uint32{"v": 1}); err != nil {
			t.Fatal(err)
		}
	})
	removeAt := appendAndLocate(func() {
		if _, err := ix.Remove("victim"); err != nil {
			t.Fatal(err)
		}
	})
	if removeAt != firstShard {
		t.Fatalf("remove logged to %s, add to %s", removeAt, firstShard)
	}
	removeEnd := walFiles(t, dir)[removeAt]

	// Re-add under fresh IDs until the record lands in the other shard.
	secondShard := ""
	for i := 0; i < 64; i++ {
		secondShard = appendAndLocate(func() {
			if err := ix.Add(fmt.Sprintf("filler-%d", filler), map[string]uint32{"f": 1}); err != nil {
				t.Fatal(err)
			}
			filler++
			if _, err := ix.Remove(fmt.Sprintf("filler-%d", filler-1)); err != nil {
				t.Fatal(err)
			}
		})
		probe := appendAndLocate(func() {
			if err := ix.Add("victim", map[string]uint32{"v": 9}); err != nil {
				t.Fatal(err)
			}
		})
		if probe != firstShard {
			secondShard = probe
			break
		}
		if _, err := ix.Remove("victim"); err != nil {
			t.Fatal(err)
		}
		secondShard = ""
	}
	if secondShard == "" {
		t.Skip("could not split the name across shards in 64 tries (improbable)")
	}

	// Machine crash: firstShard's tail (the remove of the old victim and
	// everything after) never hit the platter; secondShard's later add
	// survived. Truncate to simulate, then abandon the index (no Close).
	if err := os.Truncate(removeAt, removeEnd-1); err != nil {
		t.Fatal(err)
	}

	re, err := OpenIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.QueryEntity("victim", 0); err != nil {
		t.Fatalf("victim did not survive: %v", err)
	}
	// Every filler was added and then removed within one shard log, so
	// after recovery the victim must be the only live entity — a higher
	// Len means the stale generation resurrected as a ghost.
	if got := re.Len(); got != 1 {
		t.Fatalf("recovered %d entities, want 1", got)
	}
	// The newer add (count 9) must be the live one, and exactly one
	// victim must exist: querying its elements finds it once.
	matches, err := re.QueryThreshold(map[string]uint32{"v": 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var victims int
	for _, m := range matches {
		if m.Entity == "victim" {
			victims++
			if m.Similarity != 1 {
				t.Fatalf("stale victim generation survived: %+v", m)
			}
		}
	}
	if victims != 1 {
		t.Fatalf("%d victims after recovery, want 1 (%v)", victims, matches)
	}

	// The conflict was resolved on disk too (the losing shard was
	// re-snapshotted at open): removing the winner and reopening must
	// not resurrect the stale pre-crash generation from the old files.
	if removed, err := re.Remove("victim"); err != nil || !removed {
		t.Fatalf("remove recovered victim: %v %v", removed, err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if _, err := re2.QueryEntity("victim", 0); err == nil {
		t.Fatal("stale victim resurrected from the superseded shard's files")
	}
	if got := re2.Len(); got != 0 {
		t.Fatalf("%d entities after removing the last one, want 0", got)
	}
}
