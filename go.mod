module vsmartjoin

go 1.24
