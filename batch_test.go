package vsmartjoin

// Unit gates for the batched mutation surface: AddBatch last-write-wins
// coalescing, RemoveBatch counting and duplicate handling, AddAsync
// acknowledgement and same-entity FIFO ordering, batch behavior across
// a durable restart, and the closed-index contract.

import (
	"errors"
	"fmt"
	"testing"
)

func TestAddBatchLastWriteWins(t *testing.T) {
	ix, err := NewIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	err = ix.AddBatch([]BatchEntry{
		{Entity: "a", Elements: map[string]uint32{"x": 1}},
		{Entity: "b", Elements: map[string]uint32{"x": 9}},
		{Entity: "a", Elements: map[string]uint32{"y": 2}}, // supersedes the first "a"
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	// "a" must hold only the winning write: it matches on y, not on x.
	ms, err := ix.QueryThreshold(map[string]uint32{"y": 2}, 0.999)
	if err != nil || len(ms) != 1 || ms[0].Entity != "a" {
		t.Fatalf("probe y: %v %v, want exactly entity a", ms, err)
	}
	ms, err = ix.QueryThreshold(map[string]uint32{"x": 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Entity == "a" {
			t.Fatalf("entity a still matches its superseded elements: %v", ms)
		}
	}
	// Upsert across batches replaces, same as Add over Add.
	if err := ix.AddBatch([]BatchEntry{{Entity: "b", Elements: map[string]uint32{"z": 1}}}); err != nil {
		t.Fatal(err)
	}
	ms, err = ix.QueryThreshold(map[string]uint32{"z": 1}, 0.999)
	if err != nil || len(ms) != 1 || ms[0].Entity != "b" {
		t.Fatalf("probe z after upsert: %v %v, want exactly entity b", ms, err)
	}
}

func TestRemoveBatchCounts(t *testing.T) {
	ix, err := NewIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := ix.Add(fmt.Sprintf("e%d", i), map[string]uint32{"x": uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// A duplicate name in one batch is a no-op the second time, and
	// missing names never count.
	n, err := ix.RemoveBatch([]string{"e1", "missing", "e1", "e3"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if got := ix.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	if n, err := ix.RemoveBatch(nil); err != nil || n != 0 {
		t.Fatalf("empty batch: %d %v", n, err)
	}
}

func TestAddAsyncSameEntityFIFO(t *testing.T) {
	ix, err := NewIndex(IndexOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Fire a burst of upserts of one hot entity without waiting between
	// them: the pipeline guarantees same-entity FIFO, so the last write
	// must be the surviving value.
	var acks []<-chan error
	for v := 1; v <= 64; v++ {
		acks = append(acks, ix.AddAsync("hot", map[string]uint32{"x": uint32(v)}))
	}
	for i, c := range acks {
		if err := <-c; err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	if got := ix.Len(); got != 1 {
		t.Fatalf("len = %d, want 1", got)
	}
	ms, err := ix.QueryThreshold(map[string]uint32{"x": 64}, 0.999)
	if err != nil || len(ms) != 1 || ms[0].Entity != "hot" {
		t.Fatalf("final value probe: %v %v, want exact match on the last write", ms, err)
	}
	// Close drains the pipeline; afterwards AddAsync acknowledges with
	// ErrIndexClosed instead of enqueueing.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-ix.AddAsync("late", map[string]uint32{"x": 1}); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("AddAsync after Close = %v, want ErrIndexClosed", err)
	}
}

func TestBatchDurableRestart(t *testing.T) {
	dir := t.TempDir()
	opts := IndexOptions{Measure: "ruzicka", Dir: dir, Shards: 3, Durability: DurabilitySync}
	ix, err := NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewIndex(IndexOptions{Measure: "ruzicka"})
	if err != nil {
		t.Fatal(err)
	}
	var entries []BatchEntry
	for i := 0; i < 20; i++ {
		entries = append(entries, BatchEntry{
			Entity:   fmt.Sprintf("e%02d", i),
			Elements: map[string]uint32{fmt.Sprintf("el%d", i%6): uint32(i + 1), "shared": 1},
		})
	}
	if err := ix.AddBatch(entries); err != nil {
		t.Fatal(err)
	}
	if err := oracle.AddBatch(entries); err != nil {
		t.Fatal(err)
	}
	victims := []string{"e03", "e07", "e11", "nope"}
	if _, err := ix.RemoveBatch(victims); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.RemoveBatch(victims); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	probes := []map[string]uint32{{"shared": 1}, {"el0": 1, "el3": 2}, entries[5].Elements}
	mustAgree(t, "batched mutations after restart", reopened, oracle, probes)
}
