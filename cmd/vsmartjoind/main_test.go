package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vsmartjoin"
	"vsmartjoin/internal/cluster"
	"vsmartjoin/internal/httpd"
)

// testClient is the one HTTP client every test dials daemons with — a
// bounded pool with a timeout, never http.DefaultClient (which has
// neither and would hang a test forever on a stuck handler).
var testClient = cluster.NewHTTPClient(10*time.Second, 8)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: "ruzicka"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := testClient.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decode: %v", path, err)
	}
	return resp.StatusCode, out
}

func TestDaemonRoundTrip(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{"entity": "ip-1", "elements": {"a": 3, "b": 1, "c": 2}}`,
		`{"entity": "ip-2", "elements": {"a": 2, "b": 2, "c": 2}}`,
		`{"entity": "ip-3", "elements": {"z": 9}}`,
	} {
		if code, out := post(t, ts, "/add", body); code != http.StatusOK {
			t.Fatalf("add: %d %v", code, out)
		}
	}

	code, out := post(t, ts, "/query", `{"elements": {"a": 3, "b": 1, "c": 2}, "threshold": 0.5}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	matches := out["matches"].([]any)
	if len(matches) != 2 {
		t.Fatalf("matches: %v", matches)
	}
	first := matches[0].(map[string]any)
	if first["entity"] != "ip-1" || first["similarity"].(float64) != 1 {
		t.Fatalf("first match: %v", first)
	}

	// Query by indexed entity excludes the entity itself.
	code, out = post(t, ts, "/query", `{"entity": "ip-1", "threshold": 0.5}`)
	if code != http.StatusOK {
		t.Fatalf("entity query: %d %v", code, out)
	}
	matches = out["matches"].([]any)
	if len(matches) != 1 || matches[0].(map[string]any)["entity"] != "ip-2" {
		t.Fatalf("entity query matches: %v", matches)
	}

	// Top-k.
	code, out = post(t, ts, "/query", `{"elements": {"a": 1}, "topk": 1}`)
	if code != http.StatusOK || len(out["matches"].([]any)) != 1 {
		t.Fatalf("topk: %d %v", code, out)
	}

	// Remove, then the pair is gone.
	if code, out := post(t, ts, "/remove", `{"entity": "ip-2"}`); code != http.StatusOK || out["removed"] != true {
		t.Fatalf("remove: %d %v", code, out)
	}
	if code, out := post(t, ts, "/remove", `{"entity": "ip-2"}`); code != http.StatusOK || out["removed"] != false {
		t.Fatalf("re-remove: %d %v", code, out)
	}
	code, out = post(t, ts, "/query", `{"entity": "ip-1", "threshold": 0.5}`)
	if code != http.StatusOK || len(out["matches"].([]any)) != 0 {
		t.Fatalf("query after remove: %d %v", code, out)
	}

	// Stats reflect the traffic.
	resp, err := testClient.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats vsmartjoin.IndexStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Measure != "ruzicka" || stats.Entities != 2 || stats.Adds != 3 || stats.Removes != 1 || stats.Queries < 4 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestDaemonValidation(t *testing.T) {
	ts := testServer(t)
	for path, bodies := range map[string][]string{
		"/add": {
			`{"elements": {"a": 1}}`,     // missing entity
			`{"entity": "e"}`,            // missing elements
			`{"entity": "e", "nope": 1}`, // unknown field
			`not json`,
		},
		"/remove": {
			`{}`,
		},
		"/query": {
			`{"elements": {"a": 1}}`,                              // neither threshold nor topk
			`{"elements": {"a": 1}, "threshold": 0.5, "topk": 3}`, // both
			`{"threshold": 0.5}`,                                  // no query
			`{"entity": "e", "elements": {"a": 1}, "topk": 2}`,    // both query forms
			`{"elements": {"a": 1}, "threshold": 1.5}`,            // above range
			`{"elements": {"a": 1}, "threshold": -0.1}`,           // below range (AllPairs' rules)
			`{"elements": {"a": 1}, "topk": -1}`,                  // negative k
			`{"entity": "e", "topk": 2}`,                          // topk by entity unsupported
			`{"entity": "never-added-entity", "threshold": 0.5}`,  // unknown entity
			`{"elements": {"a": 1}, "threshold": 0.5} trailing`,   // trailing garbage
		},
	} {
		for _, body := range bodies {
			if code, out := post(t, ts, path, body); code != http.StatusBadRequest || out["error"] == "" {
				t.Fatalf("%s %s: %d %v", path, body, code, out)
			}
		}
	}
	// Wrong method is routed away by the mux.
	resp, err := testClient.Get(ts.URL + "/add")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /add: %d", resp.StatusCode)
	}
}

// TestDaemonDurableRestart drives the full daemon lifecycle: serve a
// durable sharded index, mutate it over HTTP, force a snapshot via
// POST /snapshot, shut down gracefully (the SIGINT path minus the
// signal), and restart into exactly the prior state.
func TestDaemonDurableRestart(t *testing.T) {
	dir := t.TempDir()
	opts := vsmartjoin.IndexOptions{Measure: "ruzicka", Dir: dir, Shards: 2, SnapshotEvery: -1}
	ix, err := vsmartjoin.NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, &http.Server{Handler: httpd.NewNode(ix, httpd.Options{})}, ln, ix) }()
	ts := &httptest.Server{URL: "http://" + ln.Addr().String()}

	for _, body := range []string{
		`{"entity": "ip-1", "elements": {"a": 3, "b": 1}}`,
		`{"entity": "ip-2", "elements": {"a": 3, "b": 1}}`,
		`{"entity": "gone", "elements": {"z": 1}}`,
	} {
		if code, out := post(t, ts, "/add", body); code != http.StatusOK {
			t.Fatalf("add: %d %v", code, out)
		}
	}
	if code, out := post(t, ts, "/snapshot", `{}`); code != http.StatusOK || out["snapshot"] != true {
		t.Fatalf("snapshot: %d %v", code, out)
	}
	// Mutations after the snapshot land in the new WAL generation.
	if code, out := post(t, ts, "/remove", `{"entity": "gone"}`); code != http.StatusOK || out["removed"] != true {
		t.Fatalf("remove: %d %v", code, out)
	}

	cancel() // the shutdown signal: drain, final snapshot, close
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not drain")
	}

	reopened, err := vsmartjoin.NewIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != 2 {
		t.Fatalf("recovered %d entities, want 2", reopened.Len())
	}
	got, err := reopened.QueryEntity("ip-1", 0.9)
	if err != nil || len(got) != 1 || got[0].Entity != "ip-2" || got[0].Similarity != 1 {
		t.Fatalf("recovered query: %v %v", got, err)
	}
	if _, err := reopened.QueryEntity("gone", 0); err == nil {
		t.Fatal("removed entity survived restart")
	}
}

// TestDaemonSnapshotVolatile: /snapshot on an index without -data-dir
// is a conflict, not a crash.
func TestDaemonSnapshotVolatile(t *testing.T) {
	ts := testServer(t)
	if code, out := post(t, ts, "/snapshot", `{}`); code != http.StatusConflict || out["error"] == "" {
		t.Fatalf("volatile snapshot: %d %v", code, out)
	}
}

func TestPreload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.tsv")
	trace := "# comment\n" +
		"ip-1\ta\t3\n" +
		"ip-1\ta\t2\n" + // repeated observations merge
		"ip-1\tb\n" + // count defaults to 1
		"ip-2\ta\t5\n" +
		"ip-2\tb\t1\n"
	if err := os.WriteFile(path, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := preload(ix, path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || ix.Len() != 2 {
		t.Fatalf("preloaded %d, len %d", n, ix.Len())
	}
	got, err := ix.QueryEntity("ip-1", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Entity != "ip-2" || got[0].Similarity != 1 {
		t.Fatalf("merged trace mismatch: %v", got)
	}

	if _, err := preload(ix, filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Fatal("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.tsv")
	if err := os.WriteFile(bad, []byte("only-one-field\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := preload(ix, bad); err == nil {
		t.Fatal("malformed line should error")
	}
}

// TestDaemonHealthAndReadiness: /healthz is pure liveness, /readyz
// carries the staleness counters (generation, entities, mutations,
// shards) a router compares across replicas.
func TestDaemonHealthAndReadiness(t *testing.T) {
	dir := t.TempDir()
	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: "ruzicka", Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
	defer ts.Close()
	if err := ix.Add("a", map[string]uint32{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("b", map[string]uint32{"y": 2}); err != nil {
		t.Fatal(err)
	}

	getJSON := func(path string) map[string]any {
		t.Helper()
		resp, err := testClient.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if out := getJSON("/healthz"); out["serving"] != true {
		t.Fatalf("healthz payload: %v", out)
	}
	out := getJSON("/readyz")
	if out["ready"] != true || out["measure"] != "ruzicka" {
		t.Fatalf("readyz payload: %v", out)
	}
	// 2 adds + 1 remove = 3 mutations, 1 live entity, generation 1, 2 shards.
	for field, want := range map[string]float64{"mutations": 3, "entities": 1, "generation": 1, "shards": 2} {
		if out[field].(float64) != want {
			t.Fatalf("readyz %s = %v, want %v (payload %v)", field, out[field], want, out)
		}
	}
}

// TestDaemonBulkAndEntity: the node-side endpoints the cluster router
// depends on — /bulk batched mutations and /entity multiset reads.
func TestDaemonBulkAndEntity(t *testing.T) {
	ts := testServer(t)
	code, out := post(t, ts, "/bulk", `{"ops": [
		{"op": "add", "entity": "ip-1", "elements": {"a": 3, "b": 1}},
		{"op": "add", "entity": "ip-2", "elements": {"a": 3, "b": 1}},
		{"op": "add", "entity": "gone", "elements": {"z": 1}},
		{"op": "remove", "entity": "gone"}
	]}`)
	if code != http.StatusOK || out["applied"].(float64) != 4 || out["entities"].(float64) != 2 {
		t.Fatalf("bulk: %d %v", code, out)
	}
	// A malformed op rejects the whole batch before anything applies.
	code, out = post(t, ts, "/bulk", `{"ops": [
		{"op": "add", "entity": "ip-3", "elements": {"c": 1}},
		{"op": "frobnicate", "entity": "ip-4"}
	]}`)
	if code != http.StatusBadRequest || out["error"] == "" {
		t.Fatalf("bad bulk: %d %v", code, out)
	}
	if code, out = post(t, ts, "/query", `{"entity": "ip-3", "threshold": 0}`); code != http.StatusBadRequest {
		t.Fatalf("half-applied batch: %d %v", code, out)
	}

	resp, err := testClient.Get(ts.URL + "/entity?name=ip-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ent struct {
		Entity   string            `json:"entity"`
		Elements map[string]uint32 `json:"elements"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ent); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ent.Entity != "ip-1" || ent.Elements["a"] != 3 || ent.Elements["b"] != 1 {
		t.Fatalf("entity: %d %+v", resp.StatusCode, ent)
	}
	resp2, err := testClient.Get(ts.URL + "/entity?name=gone")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("removed entity: %d", resp2.StatusCode)
	}
}

// TestParseTopology covers the -cluster flag grammar.
func TestParseTopology(t *testing.T) {
	got, err := parseTopology("a:1,b:2; c:3 ,d:4")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a:1", "b:2"}, {"c:3", "d:4"}}
	if len(got) != 2 || got[0][0] != want[0][0] || got[0][1] != want[0][1] || got[1][0] != want[1][0] || got[1][1] != want[1][1] {
		t.Fatalf("topology: %v", got)
	}
	for _, bad := range []string{"", ";", "a:1;;b:2", " , "} {
		if _, err := parseTopology(bad); err == nil {
			t.Fatalf("parseTopology(%q) should error", bad)
		}
	}
}

// TestDaemonRouterMode spawns three node daemons and a router
// in-process and drives the full write/query surface through the
// router — the daemon-level integration of the cluster subsystem (the
// exhaustive differential lives in the root package's cluster tests).
func TestDaemonRouterMode(t *testing.T) {
	var topology [][]string
	for i := 0; i < 3; i++ {
		ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: "ruzicka"})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
		t.Cleanup(ts.Close)
		topology = append(topology, []string{ts.URL})
	}
	c, err := vsmartjoin.NewCluster(vsmartjoin.ClusterOptions{
		Nodes: topology, HealthEvery: -1, RepairEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	router := httptest.NewServer(httpd.NewRouter(c, httpd.Options{}))
	t.Cleanup(router.Close)

	for _, body := range []string{
		`{"entity": "ip-1", "elements": {"a": 3, "b": 1, "c": 2}}`,
		`{"entity": "ip-2", "elements": {"a": 2, "b": 2, "c": 2}}`,
		`{"entity": "ip-3", "elements": {"z": 9}}`,
	} {
		if code, out := post(t, router, "/add", body); code != http.StatusOK {
			t.Fatalf("router add: %d %v", code, out)
		}
	}
	code, out := post(t, router, "/query", `{"elements": {"a": 3, "b": 1, "c": 2}, "threshold": 0.5}`)
	if code != http.StatusOK {
		t.Fatalf("router query: %d %v", code, out)
	}
	matches := out["matches"].([]any)
	if len(matches) != 2 || matches[0].(map[string]any)["entity"] != "ip-1" {
		t.Fatalf("router matches: %v", matches)
	}
	code, out = post(t, router, "/query", `{"entity": "ip-1", "threshold": 0.5}`)
	if code != http.StatusOK || len(out["matches"].([]any)) != 1 {
		t.Fatalf("router entity query: %d %v", code, out)
	}
	if code, out = post(t, router, "/remove", `{"entity": "ip-2"}`); code != http.StatusOK || out["removed"] != true {
		t.Fatalf("router remove: %d %v", code, out)
	}
	// Validation runs in the shared skeleton: same 400s as node mode.
	if code, out = post(t, router, "/query", `{"elements": {"a": 1}}`); code != http.StatusBadRequest {
		t.Fatalf("router validation: %d %v", code, out)
	}
	// Router readiness: all partitions reachable.
	resp, err := testClient.Get(router.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ready["ready"] != true || ready["write_ready"] != true {
		t.Fatalf("router readyz: %d %v", resp.StatusCode, ready)
	}
}

const healthzTrace = "ip-1\ta\t3\n" +
	"ip-1\tb\n" +
	"ip-2\ta\t3\n" +
	"ip-2\tb\t1\n" +
	"ip-3\tz\t9\n"

// TestPreloadGzip: -load sniffs a .gz suffix and decompresses.
func TestPreloadGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.tsv.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(healthzTrace)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := preload(ix, path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || ix.Len() != 3 {
		t.Fatalf("preloaded %d, len %d", n, ix.Len())
	}
	got, err := ix.QueryEntity("ip-1", 0.9)
	if err != nil || len(got) != 1 || got[0].Entity != "ip-2" {
		t.Fatalf("gzip trace mismatch: %v %v", got, err)
	}
}

// TestOpenIndexBulkBootstrap drives the daemon's -load + -data-dir
// decision: a fresh data dir bulk-builds the trace into snapshot files
// (zero WAL replay), a second start recovers the files without the
// trace, and a third start with the trace upserts through the
// incremental path.
func TestOpenIndexBulkBootstrap(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.tsv")
	if err := os.WriteFile(trace, []byte(healthzTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "data")
	opts := vsmartjoin.IndexOptions{Measure: "ruzicka", Dir: dir, Shards: 2}
	logf := func(string, ...any) {}

	ix, err := openIndex(opts, trace, logf)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 || ix.Generation() != 1 {
		t.Fatalf("bulk bootstrap: len %d gen %d", ix.Len(), ix.Generation())
	}
	// The bootstrapped entities must register as mutations: /readyz
	// reports Adds+Removes, and a daemon serving 3 entities claiming
	// "mutations: 0" reads as an empty index to operators.
	if st := ix.Stats(); st.Adds != 3 {
		t.Fatalf("bulk bootstrap reports Adds %d, want 3 (stats %+v)", st.Adds, st)
	}
	ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
	resp, err := testClient.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Close()
	if got, _ := ready["mutations"].(float64); got != 3 {
		t.Fatalf("/readyz after bulk bootstrap reports mutations %v, want 3 (%v)", ready["mutations"], ready)
	}
	// Bulk path means snapshot files, not WAL records: every shard WAL
	// must be empty right after the bootstrap.
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), "wal-") {
			st, err := d.Info()
			if err != nil {
				return err
			}
			if st.Size() != 0 {
				t.Fatalf("bootstrap left %d WAL bytes in %s", st.Size(), path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart without the trace: plain recovery.
	ix2, err := openIndex(opts, "", logf)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != 3 {
		t.Fatalf("recovered len %d", ix2.Len())
	}
	if err := ix2.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with the trace against the existing index: incremental
	// upserts (idempotent here — same entities).
	ix3, err := openIndex(opts, trace, logf)
	if err != nil {
		t.Fatal(err)
	}
	defer ix3.Close()
	if ix3.Len() != 3 {
		t.Fatalf("re-preloaded len %d", ix3.Len())
	}
	got, err := ix3.QueryEntity("ip-1", 0.9)
	if err != nil || len(got) != 1 || got[0].Entity != "ip-2" {
		t.Fatalf("query after restart: %v %v", got, err)
	}
}

// TestDebugMux pins the -debug-addr contract: the pprof surface answers
// on the debug mux and ONLY there — the serving handler (node or
// router) must not expose /debug/pprof/ no matter what got registered
// on http.DefaultServeMux by imports.
func TestDebugMux(t *testing.T) {
	dbg := httptest.NewServer(debugMux())
	defer dbg.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := testClient.Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("debug %s: status %d", path, resp.StatusCode)
		}
	}

	ts := testServer(t)
	resp, err := testClient.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("serving mux exposes /debug/pprof/ (status %d)", resp.StatusCode)
	}
}

// TestServeDebugGracefulShutdown drives the -debug-addr lifecycle: the
// pprof listener answers while the signal context is live, and
// cancelling the context (SIGINT/SIGTERM) drains it cleanly instead of
// abandoning the goroutine to process exit.
func TestServeDebugGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveDebug(ctx, ln) }()

	url := "http://" + ln.Addr().String() + "/debug/pprof/cmdline"
	resp, err := testClient.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug endpoint before shutdown: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveDebug: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("debug server did not drain")
	}
	if _, err := testClient.Get(url); err == nil {
		t.Fatal("debug listener still answering after shutdown")
	}
}
