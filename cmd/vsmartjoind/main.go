// Command vsmartjoind serves similarity queries over HTTP from an
// incremental in-memory index — the online counterpart of the cmd/vsmartjoin
// batch join. Entities can be added and removed while queries run.
//
// Endpoints (JSON request/response):
//
//	POST /add     {"entity": "ip-1", "elements": {"cookie-a": 3}}
//	POST /remove  {"entity": "ip-1"}
//	POST /query   {"elements": {"cookie-a": 3}, "threshold": 0.5}
//	POST /query   {"elements": {"cookie-a": 3}, "topk": 10}
//	POST /query   {"entity": "ip-1", "threshold": 0.5}   (query by indexed entity)
//	GET  /stats
//
// Add replaces any previous entity of the same name (upsert). A query
// names either "elements" or an indexed "entity", and either a
// "threshold" in [0,1] or a positive "topk".
//
// Example:
//
//	vsmartjoind -measure ruzicka -addr :8321 -load trace.tsv &
//	curl -s localhost:8321/query -d '{"elements":{"cookie-a":3},"threshold":0.5}'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"vsmartjoin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vsmartjoind: ")
	var (
		addr    = flag.String("addr", "localhost:8321", "listen address")
		measure = flag.String("measure", "ruzicka", "similarity measure: ruzicka, jaccard, dice, set-dice, cosine, set-cosine, vector-cosine, overlap")
		load    = flag.String("load", "", "TSV trace to preload (entity<TAB>element[<TAB>count] per line)")
	)
	flag.Parse()

	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: *measure})
	if err != nil {
		log.Fatal(err)
	}
	if *load != "" {
		n, err := preload(ix, *load)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("preloaded %d entities from %s", n, *load)
	}
	log.Printf("serving %s similarity on http://%s", *measure, *addr)
	log.Fatal(http.ListenAndServe(*addr, newServer(ix)))
}

// preload feeds a cmd/vsmartjoin-format TSV trace into the index,
// merging repeated observations of an entity before the (upsert) Add.
func preload(ix *vsmartjoin.Index, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	counts := map[string]map[string]uint32{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) < 2 {
			return 0, fmt.Errorf("%s:%d: want entity<TAB>element[<TAB>count], got %q", path, line, text)
		}
		count := uint32(1)
		if len(fields) >= 3 {
			n, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return 0, fmt.Errorf("%s:%d: bad count %q: %v", path, line, fields[2], err)
			}
			count = uint32(n)
		}
		m := counts[fields[0]]
		if m == nil {
			m = map[string]uint32{}
			counts[fields[0]] = m
		}
		m[fields[1]] += count
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	for entity, m := range counts {
		ix.Add(entity, m)
	}
	return len(counts), nil
}

// server wires the index to the HTTP API. Split from main so tests can
// drive it through httptest.
type server struct {
	ix  *vsmartjoin.Index
	mux *http.ServeMux
}

func newServer(ix *vsmartjoin.Index) http.Handler {
	s := &server{ix: ix, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /add", s.handleAdd)
	s.mux.HandleFunc("POST /remove", s.handleRemove)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s.mux
}

type addRequest struct {
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements"`
}

type removeRequest struct {
	Entity string `json:"entity"`
}

type queryRequest struct {
	// Exactly one of Entity (an indexed entity name) or Elements (an
	// ad-hoc multiset) names the query.
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements"`
	// Exactly one of Threshold or TopK selects the query kind. Threshold
	// is a pointer so that an explicit 0 ("any overlap") is distinguishable
	// from absent.
	Threshold *float64 `json:"threshold"`
	TopK      int      `json:"topk"`
}

type matchResponse struct {
	Entity     string  `json:"entity"`
	Similarity float64 `json:"similarity"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req addRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Entity == "" {
		writeError(w, http.StatusBadRequest, "missing entity")
		return
	}
	// Require at least one nonzero count: Index.Add drops zeros, and an
	// all-zero body would index a permanently unmatchable empty entity.
	hasMass := false
	for _, c := range req.Elements {
		if c > 0 {
			hasMass = true
			break
		}
	}
	if !hasMass {
		writeError(w, http.StatusBadRequest, "missing elements")
		return
	}
	s.ix.Add(req.Entity, req.Elements)
	writeJSON(w, http.StatusOK, map[string]any{"entities": s.ix.Len()})
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Entity == "" {
		writeError(w, http.StatusBadRequest, "missing entity")
		return
	}
	removed := s.ix.Remove(req.Entity)
	writeJSON(w, http.StatusOK, map[string]any{"removed": removed, "entities": s.ix.Len()})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if (req.Entity == "") == (len(req.Elements) == 0) {
		writeError(w, http.StatusBadRequest, "name the query with exactly one of entity or elements")
		return
	}
	if (req.Threshold == nil) == (req.TopK == 0) {
		writeError(w, http.StatusBadRequest, "select exactly one of threshold or topk")
		return
	}
	var matches []vsmartjoin.Match
	var err error
	switch {
	case req.TopK < 0:
		writeError(w, http.StatusBadRequest, "topk must be positive")
		return
	case req.TopK > 0 && req.Entity != "":
		// QueryEntity has no top-k form; reject rather than guess.
		writeError(w, http.StatusBadRequest, "topk queries take elements, not an entity")
		return
	case req.TopK > 0:
		matches = s.ix.QueryTopK(req.Elements, req.TopK)
	case req.Entity != "":
		matches, err = s.ix.QueryEntity(req.Entity, *req.Threshold)
	default:
		matches, err = s.ix.QueryThreshold(req.Elements, *req.Threshold)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]matchResponse, len(matches))
	for i, m := range matches {
		out[i] = matchResponse{Entity: m.Entity, Similarity: m.Similarity}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": out})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ix.Stats())
}
