// Command vsmartjoind serves similarity queries over HTTP from an
// incremental index — the online counterpart of the cmd/vsmartjoin
// batch join. Entities can be added and removed while queries run.
//
// Endpoints (JSON request/response):
//
//	POST /add      {"entity": "ip-1", "elements": {"cookie-a": 3}}
//	POST /remove   {"entity": "ip-1"}
//	POST /query    {"elements": {"cookie-a": 3}, "threshold": 0.5}
//	POST /query    {"elements": {"cookie-a": 3}, "topk": 10}
//	POST /query    {"entity": "ip-1", "threshold": 0.5}   (query by indexed entity)
//	POST /snapshot {}                                     (force a durable snapshot)
//	GET  /stats
//
// Add replaces any previous entity of the same name (upsert). A query
// names either "elements" or an indexed "entity", and either a
// "threshold" in [0,1] or a positive "topk".
//
// With -data-dir the index is durable: mutations are written ahead to a
// log under the directory, snapshots truncate it every -snapshot-every
// mutations (or on POST /snapshot), and a killed daemon restarts into
// exactly its prior state. -shards partitions the index for parallel
// query fan-out and per-shard write locking. On SIGINT/SIGTERM the
// daemon stops accepting connections, drains in-flight requests, writes
// a final snapshot, and exits.
//
// Example:
//
//	vsmartjoind -measure ruzicka -addr :8321 -data-dir /var/lib/vsmartjoin -shards 8 &
//	curl -s localhost:8321/query -d '{"elements":{"cookie-a":3},"threshold":0.5}'
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vsmartjoin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vsmartjoind: ")
	var (
		addr          = flag.String("addr", "localhost:8321", "listen address")
		measure       = flag.String("measure", "ruzicka", "similarity measure: ruzicka, jaccard, dice, set-dice, cosine, set-cosine, vector-cosine, overlap")
		load          = flag.String("load", "", "TSV trace to preload (entity<TAB>element[<TAB>count] per line)")
		shards        = flag.Int("shards", 1, "hash-partitioned index shards (parallel query fan-out, per-shard write locks)")
		dataDir       = flag.String("data-dir", "", "durability directory (write-ahead log + snapshots); empty = volatile")
		snapshotEvery = flag.Int("snapshot-every", 4096, "mutations between automatic snapshots (needs -data-dir; negative = only on /snapshot and shutdown)")
	)
	flag.Parse()

	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{
		Measure:       *measure,
		Shards:        *shards,
		Dir:           *dataDir,
		SnapshotEvery: *snapshotEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		log.Printf("recovered %d entities from %s", ix.Len(), *dataDir)
	}
	if *load != "" {
		n, err := preload(ix, *load)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("preloaded %d entities from %s", n, *load)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving %s similarity on http://%s (%d shards)", *measure, ln.Addr(), *shards)
	if err := serve(ctx, &http.Server{Handler: newServer(ix)}, ln, ix); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained; index closed cleanly")
}

// serve runs srv on ln until it fails or ctx is cancelled (a shutdown
// signal); on cancellation it drains in-flight requests and closes the
// index, writing a final snapshot when the index is durable. Split from
// main so tests can drive the full shutdown path.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, ix *vsmartjoin.Index) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Drain failure must not skip the final snapshot.
		ix.Close()
		return fmt.Errorf("drain: %w", err)
	}
	return ix.Close()
}

// preload feeds a cmd/vsmartjoin-format TSV trace into the index,
// merging repeated observations of an entity before the (upsert) Add.
func preload(ix *vsmartjoin.Index, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	counts := map[string]map[string]uint32{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) < 2 {
			return 0, fmt.Errorf("%s:%d: want entity<TAB>element[<TAB>count], got %q", path, line, text)
		}
		count := uint32(1)
		if len(fields) >= 3 {
			n, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return 0, fmt.Errorf("%s:%d: bad count %q: %v", path, line, fields[2], err)
			}
			count = uint32(n)
		}
		m := counts[fields[0]]
		if m == nil {
			m = map[string]uint32{}
			counts[fields[0]] = m
		}
		m[fields[1]] += count
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	for entity, m := range counts {
		if err := ix.Add(entity, m); err != nil {
			return 0, err
		}
	}
	return len(counts), nil
}

// server wires the index to the HTTP API. Split from main so tests can
// drive it through httptest.
type server struct {
	ix  *vsmartjoin.Index
	mux *http.ServeMux
}

func newServer(ix *vsmartjoin.Index) http.Handler {
	s := &server{ix: ix, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /add", s.handleAdd)
	s.mux.HandleFunc("POST /remove", s.handleRemove)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s.mux
}

type addRequest struct {
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements"`
}

type removeRequest struct {
	Entity string `json:"entity"`
}

type queryRequest struct {
	// Exactly one of Entity (an indexed entity name) or Elements (an
	// ad-hoc multiset) names the query.
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements"`
	// Exactly one of Threshold or TopK selects the query kind. Threshold
	// is a pointer so that an explicit 0 ("any overlap") is distinguishable
	// from absent.
	Threshold *float64 `json:"threshold"`
	TopK      int      `json:"topk"`
}

type snapshotRequest struct{}

type matchResponse struct {
	Entity     string  `json:"entity"`
	Similarity float64 `json:"similarity"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody parses exactly one JSON value into v with unknown fields
// rejected. Every failure is answered with a JSON error payload: 400
// for malformed, unknown-field, or trailing-garbage bodies, 413 when
// the body exceeds the size cap.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	// A well-formed first value followed by more input is a malformed
	// request, not something to silently ignore.
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after request body")
		return false
	}
	return true
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req addRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Entity == "" {
		writeError(w, http.StatusBadRequest, "missing entity")
		return
	}
	// Require at least one nonzero count: Index.Add drops zeros, and an
	// all-zero body would index a permanently unmatchable empty entity.
	hasMass := false
	for _, c := range req.Elements {
		if c > 0 {
			hasMass = true
			break
		}
	}
	if !hasMass {
		writeError(w, http.StatusBadRequest, "missing elements")
		return
	}
	if err := s.ix.Add(req.Entity, req.Elements); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"entities": s.ix.Len()})
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Entity == "" {
		writeError(w, http.StatusBadRequest, "missing entity")
		return
	}
	removed, err := s.ix.Remove(req.Entity)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": removed, "entities": s.ix.Len()})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if (req.Entity == "") == (len(req.Elements) == 0) {
		writeError(w, http.StatusBadRequest, "name the query with exactly one of entity or elements")
		return
	}
	if (req.Threshold == nil) == (req.TopK == 0) {
		writeError(w, http.StatusBadRequest, "select exactly one of threshold or topk")
		return
	}
	var matches []vsmartjoin.Match
	var err error
	switch {
	case req.TopK < 0:
		writeError(w, http.StatusBadRequest, "topk must be positive")
		return
	case req.TopK > 0 && req.Entity != "":
		// QueryEntity has no top-k form; reject rather than guess.
		writeError(w, http.StatusBadRequest, "topk queries take elements, not an entity")
		return
	case req.TopK > 0:
		matches = s.ix.QueryTopK(req.Elements, req.TopK)
	case req.Entity != "":
		// Threshold range (and NaN) validation happens inside the index,
		// with the same rules AllPairs applies; its error becomes a 400.
		matches, err = s.ix.QueryEntity(req.Entity, *req.Threshold)
	default:
		matches, err = s.ix.QueryThreshold(req.Elements, *req.Threshold)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]matchResponse, len(matches))
	for i, m := range matches {
		out[i] = matchResponse{Entity: m.Entity, Similarity: m.Similarity}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": out})
}

// handleSnapshot forces a snapshot + log truncation on a durable index;
// on a volatile one it reports 409 (there is nothing to snapshot to).
// The body is optional: empty and "{}" both trigger a snapshot, but a
// non-empty body still has to be well-formed.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	if r.ContentLength != 0 && !decodeBody(w, r, &req) {
		return
	}
	if err := s.ix.Snapshot(); err != nil {
		// No durability dir (or a closed index) is the caller's state
		// conflict; anything else is a real server-side persistence
		// failure and must not hide among the 4xx.
		status := http.StatusInternalServerError
		if errors.Is(err, vsmartjoin.ErrNotDurable) || errors.Is(err, vsmartjoin.ErrIndexClosed) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshot": true, "entities": s.ix.Len()})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ix.Stats())
}
