// Command vsmartjoind serves similarity queries over HTTP from an
// incremental index — the online counterpart of the cmd/vsmartjoin
// batch join. Entities can be added and removed while queries run.
//
// Endpoints (JSON request/response):
//
//	POST /add      {"entity": "ip-1", "elements": {"cookie-a": 3}}
//	POST /remove   {"entity": "ip-1"}
//	POST /query    {"elements": {"cookie-a": 3}, "threshold": 0.5}
//	POST /query    {"elements": {"cookie-a": 3}, "topk": 10}
//	POST /query    {"entity": "ip-1", "threshold": 0.5}   (query by indexed entity)
//	POST /snapshot {}                                     (force a durable snapshot)
//	GET  /healthz                                         (liveness: 200 once serving)
//	GET  /stats
//
// Add replaces any previous entity of the same name (upsert). A query
// names either "elements" or an indexed "entity", and either a
// "threshold" in [0,1] or a positive "topk".
//
// With -data-dir the index is durable: mutations are written ahead to a
// per-shard log under the directory, snapshots truncate each shard's
// log every -snapshot-every mutations (or on POST /snapshot), and a
// killed daemon restarts into exactly its prior state. -shards
// partitions the index for parallel query fan-out and per-shard write
// locking (0 adopts the shard count found on disk). On SIGINT/SIGTERM
// the daemon stops accepting connections, drains in-flight requests,
// writes a final snapshot, and exits.
//
// -load preloads a TSV trace (gzip-decompressed on a .gz suffix). When
// -data-dir names a directory with no index yet, the trace is
// bulk-built into snapshot files first and then opened — one batch job
// instead of one write-ahead-logged Add per entity — so cold-starting a
// large corpus costs what the hardware can stream, not what the WAL
// path can append. A data dir that already holds an index recovers it
// and applies the trace as ordinary (logged) upserts; without -data-dir
// the trace per-Add-loads a volatile index.
//
// Example:
//
//	vsmartjoind -measure ruzicka -addr :8321 -data-dir /var/lib/vsmartjoin -shards 8 &
//	curl -s localhost:8321/query -d '{"elements":{"cookie-a":3},"threshold":0.5}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vsmartjoin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vsmartjoind: ")
	var (
		addr          = flag.String("addr", "localhost:8321", "listen address")
		measure       = flag.String("measure", "ruzicka", "similarity measure: ruzicka, jaccard, dice, set-dice, cosine, set-cosine, vector-cosine, overlap")
		load          = flag.String("load", "", "TSV trace to preload (entity<TAB>element[<TAB>count] per line, .gz accepted)")
		shards        = flag.Int("shards", 0, "hash-partitioned index shards (parallel query fan-out, per-shard write locks); 0 = adopt an existing data-dir's count, else 1")
		dataDir       = flag.String("data-dir", "", "durability directory (per-shard write-ahead logs + snapshots); empty = volatile")
		snapshotEvery = flag.Int("snapshot-every", 4096, "mutations between automatic snapshots (needs -data-dir; negative = only on /snapshot and shutdown)")
	)
	flag.Parse()

	opts := vsmartjoin.IndexOptions{
		Measure:       *measure,
		Shards:        *shards,
		Dir:           *dataDir,
		SnapshotEvery: *snapshotEvery,
	}
	ix, err := openIndex(opts, *load, log.Printf)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving %s similarity on http://%s (%d shards)", *measure, ln.Addr(), ix.Stats().Shards)
	if err := serve(ctx, &http.Server{Handler: newServer(ix)}, ln, ix); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained; index closed cleanly")
}

// serve runs srv on ln until it fails or ctx is cancelled (a shutdown
// signal); on cancellation it drains in-flight requests and closes the
// index, writing a final snapshot when the index is durable. Split from
// main so tests can drive the full shutdown path.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, ix *vsmartjoin.Index) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Drain failure must not skip the final snapshot.
		ix.Close()
		return fmt.Errorf("drain: %w", err)
	}
	return ix.Close()
}

// openIndex brings up the index for the flag combination: recover an
// existing data dir, bulk-build a fresh one from the -load trace, or
// fall back to a volatile (or freshly created durable) index with the
// trace applied as per-record Adds. logf keeps the decision visible in
// the daemon log; tests pass a no-op.
func openIndex(opts vsmartjoin.IndexOptions, load string, logf func(string, ...any)) (*vsmartjoin.Index, error) {
	if opts.Dir == "" {
		ix, err := vsmartjoin.NewIndex(opts)
		if err != nil {
			return nil, err
		}
		if load != "" {
			n, err := preload(ix, load)
			if err != nil {
				return nil, err
			}
			logf("preloaded %d entities from %s", n, load)
		}
		return ix, nil
	}

	ix, err := vsmartjoin.OpenIndex(opts)
	switch {
	case err == nil:
		logf("recovered %d entities from %s (generation %d)", ix.Len(), opts.Dir, ix.Generation())
		// An existing index already absorbed any earlier bulk load; the
		// trace applies as ordinary upserts on top of it.
		if load != "" {
			n, err := preload(ix, load)
			if err != nil {
				ix.Close()
				return nil, err
			}
			logf("preloaded %d entities from %s", n, load)
		}
		return ix, nil
	case errors.Is(err, vsmartjoin.ErrNoIndex) && load != "":
		// Fresh data dir + trace: the bulk path. Build snapshot files as
		// a batch job, then open them — no per-record WAL appends.
		d, _, err := vsmartjoin.ReadTraceFile(load)
		if err != nil {
			return nil, err
		}
		bs, err := vsmartjoin.BuildIndexFiles(d, opts)
		if err != nil {
			return nil, err
		}
		ix, err := vsmartjoin.OpenIndex(opts)
		if err != nil {
			return nil, err
		}
		logf("bulk-built %d entities in %d shards from %s into %s", bs.Entities, bs.Shards, load, opts.Dir)
		return ix, nil
	case errors.Is(err, vsmartjoin.ErrNoIndex):
		ix, err := vsmartjoin.NewIndex(opts)
		if err != nil {
			return nil, err
		}
		logf("created empty index at %s", opts.Dir)
		return ix, nil
	default:
		return nil, err
	}
}

// preload feeds a cmd/vsmartjoin-format TSV trace (.gz accepted) into
// the index, merging repeated observations of an entity before the
// (upsert) Add.
func preload(ix *vsmartjoin.Index, path string) (int, error) {
	d, _, err := vsmartjoin.ReadTraceFile(path)
	if err != nil {
		return 0, err
	}
	var addErr error
	d.Each(func(entity string, counts map[string]uint32) bool {
		addErr = ix.Add(entity, counts)
		return addErr == nil
	})
	if addErr != nil {
		return 0, addErr
	}
	return d.Len(), nil
}

// server wires the index to the HTTP API. Split from main so tests can
// drive it through httptest.
type server struct {
	ix  *vsmartjoin.Index
	mux *http.ServeMux
}

func newServer(ix *vsmartjoin.Index) http.Handler {
	s := &server{ix: ix, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /add", s.handleAdd)
	s.mux.HandleFunc("POST /remove", s.handleRemove)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s.mux
}

type addRequest struct {
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements"`
}

type removeRequest struct {
	Entity string `json:"entity"`
}

type queryRequest struct {
	// Exactly one of Entity (an indexed entity name) or Elements (an
	// ad-hoc multiset) names the query.
	Entity   string            `json:"entity"`
	Elements map[string]uint32 `json:"elements"`
	// Exactly one of Threshold or TopK selects the query kind. Threshold
	// is a pointer so that an explicit 0 ("any overlap") is distinguishable
	// from absent.
	Threshold *float64 `json:"threshold"`
	TopK      int      `json:"topk"`
}

type snapshotRequest struct{}

type matchResponse struct {
	Entity     string  `json:"entity"`
	Similarity float64 `json:"similarity"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody parses exactly one JSON value into v with unknown fields
// rejected. Every failure is answered with a JSON error payload: 400
// for malformed, unknown-field, or trailing-garbage bodies, 413 when
// the body exceeds the size cap.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	// A well-formed first value followed by more input is a malformed
	// request, not something to silently ignore.
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after request body")
		return false
	}
	return true
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req addRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Entity == "" {
		writeError(w, http.StatusBadRequest, "missing entity")
		return
	}
	// Require at least one nonzero count: Index.Add drops zeros, and an
	// all-zero body would index a permanently unmatchable empty entity.
	hasMass := false
	for _, c := range req.Elements {
		if c > 0 {
			hasMass = true
			break
		}
	}
	if !hasMass {
		writeError(w, http.StatusBadRequest, "missing elements")
		return
	}
	if err := s.ix.Add(req.Entity, req.Elements); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"entities": s.ix.Len()})
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Entity == "" {
		writeError(w, http.StatusBadRequest, "missing entity")
		return
	}
	removed, err := s.ix.Remove(req.Entity)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": removed, "entities": s.ix.Len()})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if (req.Entity == "") == (len(req.Elements) == 0) {
		writeError(w, http.StatusBadRequest, "name the query with exactly one of entity or elements")
		return
	}
	if (req.Threshold == nil) == (req.TopK == 0) {
		writeError(w, http.StatusBadRequest, "select exactly one of threshold or topk")
		return
	}
	var matches []vsmartjoin.Match
	var err error
	switch {
	case req.TopK < 0:
		writeError(w, http.StatusBadRequest, "topk must be positive")
		return
	case req.TopK > 0 && req.Entity != "":
		// QueryEntity has no top-k form; reject rather than guess.
		writeError(w, http.StatusBadRequest, "topk queries take elements, not an entity")
		return
	case req.TopK > 0:
		matches = s.ix.QueryTopK(req.Elements, req.TopK)
	case req.Entity != "":
		// Threshold range (and NaN) validation happens inside the index,
		// with the same rules AllPairs applies; its error becomes a 400.
		matches, err = s.ix.QueryEntity(req.Entity, *req.Threshold)
	default:
		matches, err = s.ix.QueryThreshold(req.Elements, *req.Threshold)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]matchResponse, len(matches))
	for i, m := range matches {
		out[i] = matchResponse{Entity: m.Entity, Similarity: m.Similarity}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": out})
}

// handleSnapshot forces a snapshot + log truncation on a durable index;
// on a volatile one it reports 409 (there is nothing to snapshot to).
// The body is optional: empty and "{}" both trigger a snapshot, but a
// non-empty body still has to be well-formed.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	if r.ContentLength != 0 && !decodeBody(w, r, &req) {
		return
	}
	if err := s.ix.Snapshot(); err != nil {
		// No durability dir (or a closed index) is the caller's state
		// conflict; anything else is a real server-side persistence
		// failure and must not hide among the 4xx.
		status := http.StatusInternalServerError
		if errors.Is(err, vsmartjoin.ErrNotDurable) || errors.Is(err, vsmartjoin.ErrIndexClosed) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshot": true, "entities": s.ix.Len()})
}

// handleHealthz is the load-balancer liveness probe: the handler is
// only registered once recovery and preload finished, so any answer at
// all means the daemon is serving. The payload carries the durable
// generation (0 for a volatile index) and the live entity count, cheap
// enough for aggressive probe intervals.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"serving":    true,
		"generation": s.ix.Generation(),
		"entities":   s.ix.Len(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ix.Stats())
}
