// Command vsmartjoind serves similarity queries over HTTP — as a
// single node with its own incremental index, or (with -cluster) as a
// stateless router fronting many such nodes as partitions of one
// logical index. Both modes share one server skeleton (internal/httpd)
// and one endpoint surface, so clients and load balancers cannot tell
// them apart on the hot path.
//
// Node-mode endpoints (JSON request/response):
//
//	POST /add      {"entity": "ip-1", "elements": {"cookie-a": 3}}
//	POST /remove   {"entity": "ip-1"}
//	POST /query    {"elements": {"cookie-a": 3}, "threshold": 0.5}
//	POST /query    {"elements": {"cookie-a": 3}, "topk": 10}
//	POST /query    {"entity": "ip-1", "threshold": 0.5}   (query by indexed entity)
//	POST /snapshot {}                                     (force a durable snapshot)
//	POST /bulk     {"ops": [{"op":"add",...}, ...]}       (batched mutations)
//	GET  /entity?name=ip-1                                (stored multiset of an entity)
//	GET  /healthz                                         (liveness: 200 once serving)
//	GET  /readyz                                          (readiness + staleness counters)
//	GET  /stats
//
// Add replaces any previous entity of the same name (upsert). A query
// names either "elements" or an indexed "entity", and either a
// "threshold" in [0,1] or a positive "topk".
//
// With -data-dir the index is durable: mutations are written ahead to a
// per-shard log under the directory, snapshots truncate each shard's
// log every -snapshot-every mutations (or on POST /snapshot), and a
// killed daemon restarts into exactly its prior state. -durability
// sync additionally fsyncs before every acknowledgement, group-
// committed so concurrent writers (and /bulk batches) share one fsync;
// -group-commit-window tunes how long the committer waits for company.
// -shards partitions the index for parallel query fan-out and
// per-shard write locking (0 adopts the shard count found on disk).
// On SIGINT/SIGTERM
// the daemon stops accepting connections, drains in-flight requests,
// writes a final snapshot, and exits.
//
// -load preloads a TSV trace (gzip-decompressed on a .gz suffix). When
// -data-dir names a directory with no index yet, the trace is
// bulk-built into snapshot files first and then opened — one batch job
// instead of one write-ahead-logged Add per entity. A data dir that
// already holds an index recovers it and applies the trace as ordinary
// (logged) upserts; without -data-dir the trace per-Add-loads a
// volatile index.
//
// -debug-addr starts a second HTTP listener serving net/http/pprof
// under /debug/pprof/ — CPU/heap/mutex profiles of the live daemon.
// The profiling surface is a separate mux on a separate address, never
// mounted on the serving handler; bind it to loopback.
//
// Router mode: -cluster takes the node topology as
// "replica,replica;replica,replica" — partitions separated by ";",
// replica base URLs within a partition by ",". The router holds no
// index: writes route by entity-name hash to the owner partition and
// must reach a majority of its replicas, queries scatter to one
// healthy replica per partition (with per-node timeouts and hedged
// retry) and merge exactly, and a background anti-entropy pass
// re-drives writes that missed a replica. Any number of routers may
// front the same nodes.
//
// Examples:
//
//	vsmartjoind -measure ruzicka -addr :8321 -data-dir /var/lib/vsmartjoin -shards 8 &
//	vsmartjoind -addr :9000 -cluster 'host-a:8321,host-b:8321;host-c:8321,host-d:8321' &
//	curl -s localhost:9000/query -d '{"elements":{"cookie-a":3},"threshold":0.5}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vsmartjoin"
	"vsmartjoin/internal/httpd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vsmartjoind: ")
	var (
		addr          = flag.String("addr", "localhost:8321", "listen address")
		measure       = flag.String("measure", "ruzicka", "similarity measure: ruzicka, jaccard, dice, set-dice, cosine, set-cosine, vector-cosine, overlap")
		load          = flag.String("load", "", "TSV trace to preload (entity<TAB>element[<TAB>count] per line, .gz accepted)")
		shards        = flag.Int("shards", 0, "hash-partitioned index shards (parallel query fan-out, per-shard write locks); 0 = adopt an existing data-dir's count, else 1")
		dataDir       = flag.String("data-dir", "", "durability directory (per-shard write-ahead logs + snapshots); empty = volatile")
		snapshotEvery = flag.Int("snapshot-every", 4096, "mutations between automatic snapshots (needs -data-dir; negative = only on /snapshot and shutdown)")
		durability    = flag.String("durability", "os", `acknowledgement contract (needs -data-dir): "os" pushes records to the kernel, "sync" group-commits an fsync before every acknowledgement`)
		gcWindow      = flag.Duration("group-commit-window", 0, "how long the group committer waits for concurrent writes to share one fsync (-durability sync; 0 = default 200µs)")

		debugAddr   = flag.String("debug-addr", "", "profiling listen address serving net/http/pprof under /debug/pprof/; empty = disabled (bind loopback or another private interface — the endpoints expose internals)")
		maxInFlight = flag.Int("max-inflight", 0, "admission control: concurrent requests served before shedding with 429 (0 = default, negative = unlimited)")

		clusterSpec = flag.String("cluster", "", `router mode: node topology "replica,replica;replica,replica" (partitions split by ';', replica URLs by ','); the daemon then routes instead of indexing`)
		nodeTimeout = flag.Duration("node-timeout", 5*time.Second, "router mode: per-node request timeout")
		hedgeAfter  = flag.Duration("hedge-after", 100*time.Millisecond, "router mode: hedge a slow per-partition query attempt to another replica after this long (negative disables)")
		healthEvery = flag.Duration("health-every", 2*time.Second, "router mode: node readiness polling cadence (negative disables)")
		repairEvery = flag.Duration("repair-every", 5*time.Second, "router mode: anti-entropy cadence re-driving missed writes (negative disables)")
	)
	flag.Parse()

	var handler http.Handler
	var closer io.Closer
	if *clusterSpec != "" {
		if *load != "" || *dataDir != "" {
			log.Fatal("-cluster is router mode: -load and -data-dir belong on the nodes")
		}
		topology, err := parseTopology(*clusterSpec)
		if err != nil {
			log.Fatal(err)
		}
		c, err := vsmartjoin.NewCluster(vsmartjoin.ClusterOptions{
			Nodes:       topology,
			Timeout:     *nodeTimeout,
			HedgeAfter:  *hedgeAfter,
			HealthEvery: *healthEvery,
			RepairEvery: *repairEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes := 0
		for _, p := range topology {
			nodes += len(p)
		}
		log.Printf("routing %d partitions over %d nodes", len(topology), nodes)
		handler, closer = httpd.NewRouter(c, httpd.Options{MaxInFlight: *maxInFlight}), closerFunc(func() error { c.Close(); return nil })
	} else {
		opts := vsmartjoin.IndexOptions{
			Measure:           *measure,
			Shards:            *shards,
			Dir:               *dataDir,
			SnapshotEvery:     *snapshotEvery,
			GroupCommitWindow: *gcWindow,
		}
		switch *durability {
		case "os":
		case "sync":
			opts.Durability = vsmartjoin.DurabilitySync
		default:
			log.Fatalf(`-durability %q: want "os" or "sync"`, *durability)
		}
		ix, err := openIndex(opts, *load, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving %s similarity (%d shards)", *measure, ix.Stats().Shards)
		handler, closer = httpd.NewNode(ix, httpd.Options{MaxInFlight: *maxInFlight}), ix
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		// The debug server lives on its own mux and listener so the
		// profiling surface can never leak onto the serving address. It
		// shares the signal context: a long-running CPU profile or trace
		// download is drained on SIGINT/SIGTERM like any serving request
		// rather than cut off mid-stream by process exit.
		go func() {
			if err := serveDebug(ctx, dln); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
		log.Printf("pprof on http://%s/debug/pprof/", dln.Addr())
	}
	log.Printf("listening on http://%s", ln.Addr())
	if err := serve(ctx, &http.Server{Handler: handler}, ln, closer); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained; closed cleanly")
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// debugMux is the opt-in profiling surface behind -debug-addr: the
// net/http/pprof handlers mounted explicitly on a private mux, so
// nothing here ever registers on the serving handler (or depends on
// http.DefaultServeMux). Split from main so tests can assert both that
// the endpoints answer here and that the node/router muxes don't serve
// them.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveDebug runs the pprof listener until ctx is cancelled, then
// drains it gracefully (bounded, since a pprof trace stream can be
// arbitrarily long). Split from main so tests can drive it.
func serveDebug(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: debugMux()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, net.ErrClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
		return fmt.Errorf("debug drain: %w", err)
	}
	return nil
}

// parseTopology turns the -cluster flag into the NewCluster node grid:
// ";" separates partitions, "," separates a partition's replica URLs.
func parseTopology(spec string) ([][]string, error) {
	var out [][]string
	for pi, part := range strings.Split(spec, ";") {
		var replicas []string
		for _, addr := range strings.Split(part, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				replicas = append(replicas, addr)
			}
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("-cluster: partition %d has no nodes", pi)
		}
		out = append(out, replicas)
	}
	if len(out) == 0 {
		return nil, errors.New("-cluster: empty topology")
	}
	return out, nil
}

// serve runs srv on ln until it fails or ctx is cancelled (a shutdown
// signal); on cancellation it drains in-flight requests and closes the
// backend — for a node that writes a final snapshot when the index is
// durable, for a router it stops the health and repair loops. Split
// from main so tests can drive the full shutdown path.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, backend io.Closer) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Drain failure must not skip the final snapshot.
		backend.Close()
		return fmt.Errorf("drain: %w", err)
	}
	return backend.Close()
}

// openIndex brings up the index for the flag combination: recover an
// existing data dir, bulk-build a fresh one from the -load trace, or
// fall back to a volatile (or freshly created durable) index with the
// trace applied as per-record Adds. logf keeps the decision visible in
// the daemon log; tests pass a no-op.
func openIndex(opts vsmartjoin.IndexOptions, load string, logf func(string, ...any)) (*vsmartjoin.Index, error) {
	if opts.Dir == "" {
		ix, err := vsmartjoin.NewIndex(opts)
		if err != nil {
			return nil, err
		}
		if load != "" {
			n, err := preload(ix, load)
			if err != nil {
				return nil, err
			}
			logf("preloaded %d entities from %s", n, load)
		}
		return ix, nil
	}

	ix, err := vsmartjoin.OpenIndex(opts)
	switch {
	case err == nil:
		logf("recovered %d entities from %s (generation %d)", ix.Len(), opts.Dir, ix.Generation())
		// An existing index already absorbed any earlier bulk load; the
		// trace applies as ordinary upserts on top of it.
		if load != "" {
			n, err := preload(ix, load)
			if err != nil {
				ix.Close()
				return nil, err
			}
			logf("preloaded %d entities from %s", n, load)
		}
		return ix, nil
	case errors.Is(err, vsmartjoin.ErrNoIndex) && load != "":
		// Fresh data dir + trace: the bulk path. Build snapshot files as
		// a batch job, then open them — no per-record WAL appends.
		d, _, err := vsmartjoin.ReadTraceFile(load)
		if err != nil {
			return nil, err
		}
		bs, err := vsmartjoin.BuildIndexFiles(d, opts)
		if err != nil {
			return nil, err
		}
		ix, err := vsmartjoin.OpenIndex(opts)
		if err != nil {
			return nil, err
		}
		logf("bulk-built %d entities in %d shards from %s into %s", bs.Entities, bs.Shards, load, opts.Dir)
		return ix, nil
	case errors.Is(err, vsmartjoin.ErrNoIndex):
		ix, err := vsmartjoin.NewIndex(opts)
		if err != nil {
			return nil, err
		}
		logf("created empty index at %s", opts.Dir)
		return ix, nil
	default:
		return nil, err
	}
}

// preload feeds a cmd/vsmartjoin-format TSV trace (.gz accepted) into
// the index, merging repeated observations of an entity before the
// (upsert) Add.
func preload(ix *vsmartjoin.Index, path string) (int, error) {
	d, _, err := vsmartjoin.ReadTraceFile(path)
	if err != nil {
		return 0, err
	}
	var addErr error
	d.Each(func(entity string, counts map[string]uint32) bool {
		addErr = ix.Add(entity, counts)
		return addErr == nil
	})
	if addErr != nil {
		return 0, addErr
	}
	return d.Len(), nil
}
