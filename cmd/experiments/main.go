// Command experiments reproduces the paper's evaluation figures on the
// scaled synthetic workloads. Run with no flags for the full suite, or
// select one figure:
//
//	experiments -fig 4        # Fig 4: run time vs threshold (small)
//	experiments -fig 7        # Fig 7: Sharding sensitivity to C
//	experiments -fig proxy    # §7.4 proxy identification study
//	experiments -tiny         # fast smoke run on tiny traces
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vsmartjoin/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", `figure to reproduce: 2, 3, 4, 5, 6, 7, proxy, or all`)
	tiny := flag.Bool("tiny", false, "use tiny traces (fast smoke run)")
	flag.Parse()

	env := experiments.NewEnv()
	if *tiny {
		env = experiments.NewTinyEnv()
	}

	type driver struct {
		ids []string
		f   func(*experiments.Env) (experiments.Report, error)
	}
	drivers := []driver{
		{[]string{"2", "3", "2-3", "fig2-3"}, experiments.Fig2and3},
		{[]string{"4", "fig4"}, experiments.Fig4},
		{[]string{"5", "fig5"}, experiments.Fig5},
		{[]string{"6", "fig6"}, experiments.Fig6},
		{[]string{"7", "fig7"}, experiments.Fig7},
		{[]string{"proxy", "7.4"}, experiments.ProxyStudy},
	}

	run := func(f func(*experiments.Env) (experiments.Report, error)) {
		start := time.Now()
		r, err := f(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.String())
		fmt.Printf("[reproduced in %.1fs wall clock]\n\n", time.Since(start).Seconds())
	}

	if *fig == "all" {
		for _, d := range drivers {
			run(d.f)
		}
		return
	}
	for _, d := range drivers {
		for _, id := range d.ids {
			if id == *fig {
				run(d.f)
				return
			}
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
	os.Exit(2)
}
