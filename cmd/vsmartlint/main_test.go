package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBinaryOverBadModule builds the real vsmartlint binary and runs it
// over a hermetic, deliberately broken module, pinning the exit code
// and the diagnostics a CI user would see.
func TestBinaryOverBadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "vsmartlint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-C", filepath.Join("testdata", "badmod"), "./...")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	exit, ok := err.(*exec.ExitError)
	if err == nil || !ok {
		t.Fatalf("want exit status 1, got %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.String(), stderr.String())
	}
	if code := exit.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}

	got := stdout.String()
	for _, want := range []string{
		"boundedclient: http.Get uses the unbounded default client",
		"framesafety: raw length-prefix write binary.AppendUvarint outside internal/frame",
		"framesafety: checksum construction crc32.Checksum outside internal/frame",
		"framesafety: direct os.Create of snap-* file outside internal/wal",
		"walerr: error from bufio.Writer.Flush discarded by defer",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\noutput:\n%s", want, got)
		}
	}
	if !strings.HasPrefix(got, "main.go:") {
		t.Errorf("findings should use paths relative to -C dir, got:\n%s", got)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing finding count, got:\n%s", stderr.String())
	}
}

// TestListAnalyzers runs the in-process entry point: -list must name
// every registered analyzer and exit 0.
func TestListAnalyzers(t *testing.T) {
	outf, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer outf.Close()
	if code := run([]string{"-list"}, outf, outf); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
	data, err := os.ReadFile(outf.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"framesafety", "lockscope", "canonicalorder", "boundedclient", "walerr"} {
		if !strings.Contains(string(data), name) {
			t.Errorf("-list output missing %q:\n%s", name, data)
		}
	}
}
