// Command vsmartlint runs the project's custom static-analysis suite
// (internal/lint) over Go packages: the machine-checked forms of the
// engine's framing, locking, result-ordering, dialer, and durability
// invariants.
//
//	vsmartlint ./...          # what CI runs; exits 1 on any finding
//	vsmartlint -list          # print the analyzers and what they check
//	vsmartlint -no-tests pkg  # skip _test.go files
//
// Findings print one per line as file:line:col: analyzer: message.
// Silence a deliberate exception with a comment on (or directly above)
// the flagged line:
//
//	//lint:vsmart-allow <analyzer> <reason>
//
// The reason is mandatory, and a suppression that no longer silences
// anything is itself reported — stale exceptions fail the build.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vsmartjoin/internal/lint"
	"vsmartjoin/internal/lint/driver"
	"vsmartjoin/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("vsmartlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	noTests := fs.Bool("no-tests", false, "skip _test.go files")
	dir := fs.String("C", "", "run as if started in this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Load(load.Config{Dir: *dir, Tests: !*noTests}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "vsmartlint: %v\n", err)
		return 2
	}
	findings, err := driver.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "vsmartlint: %v\n", err)
		return 2
	}
	wd, _ := os.Getwd()
	if *dir != "" {
		if abs, err := filepath.Abs(*dir); err == nil {
			wd = abs
		}
	}
	for _, f := range findings {
		// Relative paths keep output stable across checkouts.
		if rel, err := filepath.Rel(wd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			f.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vsmartlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
