// Command badmod is a deliberately broken module: vsmartlint must exit
// non-zero and name each of these violations when run over it. Its own
// go.mod keeps it out of the parent module's ./... build.
package main

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"net/http"
	"os"
)

func main() {
	_, _ = http.Get("http://example.invalid")

	buf := binary.AppendUvarint(nil, 42)
	_ = crc32.Checksum(buf, crc32.MakeTable(crc32.Castagnoli))

	f, err := os.Create("snap-000001.tmp")
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	defer w.Flush()
	_, _ = w.Write(buf)
}
