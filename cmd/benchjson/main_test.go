package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleAfter = `goos: linux
goarch: amd64
pkg: vsmartjoin/internal/index
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkQueryThreshold/t=0.5-8   	   39454	     11911 ns/op	       0 B/op	       0 allocs/op
BenchmarkQueryTopK/k=10-8         	   24441	     30000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	vsmartjoin/internal/index	9.409s
pkg: vsmartjoin
BenchmarkZipfRepeatedQuery/cache=hit-8 	 1000000	      1027 ns/op	         1.000 hits/op	      16 B/op	       1 allocs/op
`

const sampleBefore = `pkg: vsmartjoin/internal/index
BenchmarkQueryThreshold/t=0.5   	   39454	     26669 ns/op	    8336 B/op	      23 allocs/op
BenchmarkQueryTopK/k=10         	   24441	     53068 ns/op	   10216 B/op	      23 allocs/op
`

func TestParseBench(t *testing.T) {
	names, byName, err := parseBench(strings.NewReader(sampleAfter))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"BenchmarkQueryThreshold/t=0.5",
		"BenchmarkQueryTopK/k=10",
		"BenchmarkZipfRepeatedQuery/cache=hit",
	}
	if len(names) != len(want) {
		t.Fatalf("parsed %d names %v, want %d", len(names), names, len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], n)
		}
	}
	thr := byName["BenchmarkQueryThreshold/t=0.5"]
	if thr.Pkg != "vsmartjoin/internal/index" || thr.Iterations != 39454 || thr.NsPerOp != 11911 || thr.AllocsOp != 0 {
		t.Fatalf("threshold result = %+v", thr)
	}
	zipf := byName["BenchmarkZipfRepeatedQuery/cache=hit"]
	if zipf.Pkg != "vsmartjoin" || zipf.Metrics["hits/op"] != 1.0 || zipf.AllocsOp != 1 {
		t.Fatalf("zipf result = %+v", zipf)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo/t=0.5-16":   "BenchmarkFoo/t=0.5",
		"BenchmarkFoo/cache=off":  "BenchmarkFoo/cache=off",
		"BenchmarkFoo/hedge-free": "BenchmarkFoo/hedge-free",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBuildReportJoinsBaseline(t *testing.T) {
	names, after, err := parseBench(strings.NewReader(sampleAfter))
	if err != nil {
		t.Fatal(err)
	}
	_, before, err := parseBench(strings.NewReader(sampleBefore))
	if err != nil {
		t.Fatal(err)
	}
	rep := buildReport(names, after, before, "baseline.txt")
	if rep.Summary.Benchmarks != 3 || rep.Summary.Compared != 2 || rep.Summary.ImprovedNs != 2 {
		t.Fatalf("summary = %+v", rep.Summary)
	}
	if rep.Summary.ZeroAllocAfter != 2 {
		t.Fatalf("zero_alloc_after = %d, want 2", rep.Summary.ZeroAllocAfter)
	}
	e := rep.Benchmarks[0]
	if e.Before == nil || e.NsChangePct == nil {
		t.Fatalf("first entry missing baseline join: %+v", e)
	}
	// 26669 -> 11911 is a 55.3% improvement.
	if *e.NsChangePct > -55 || *e.NsChangePct < -56 {
		t.Fatalf("ns_change_pct = %v, want about -55.3", *e.NsChangePct)
	}
	if rep.Benchmarks[2].Before != nil {
		t.Fatalf("zipf entry should have no baseline (cache=hit is new): %+v", rep.Benchmarks[2])
	}
}

func TestRunWritesValidJSON(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "after.txt")
	basePath := filepath.Join(dir, "before.txt")
	outPath := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(inPath, []byte(sampleAfter), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, []byte(sampleBefore), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(inPath, basePath, outPath, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Schema != schema || len(rep.Benchmarks) != 3 {
		t.Fatalf("round-tripped report = %+v", rep.Summary)
	}
}

const sampleLoadtest = `{
  "schema": "vsmartjoin-loadtest/1",
  "config": {"concurrency": 4, "read_pct": 90},
  "elapsed_ns": 2000000000,
  "total_qps": 5500,
  "reads": {"count": 10000, "errors": 0, "shed": 25, "qps": 5000,
            "mean_ns": 800000, "p50_ns": 600000, "p99_ns": 4000000, "p999_ns": 9000000},
  "writes": {"count": 1000, "errors": 2, "shed": 0, "qps": 500,
             "mean_ns": 1200000, "p50_ns": 900000, "p99_ns": 6000000, "p999_ns": 12000000}
}`

func TestRunFoldsLoadtestReport(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "after.txt")
	ltPath := filepath.Join(dir, "loadtest.json")
	outPath := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(inPath, []byte(sampleAfter), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ltPath, []byte(sampleLoadtest), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(inPath, "", outPath, []string{"nodes1=" + ltPath}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 3 microbenchmarks + reads + writes.
	if rep.Summary.Benchmarks != 5 || len(rep.Benchmarks) != 5 {
		t.Fatalf("benchmarks = %d, want 5", len(rep.Benchmarks))
	}
	reads := rep.Benchmarks[3]
	if reads.Name != "Loadtest/nodes1/reads" {
		t.Fatalf("fold name = %q", reads.Name)
	}
	if reads.After.NsPerOp != 800000 || reads.After.Metrics["p99_ns"] != 4e6 || reads.After.Metrics["shed"] != 25 {
		t.Fatalf("fold result = %+v", reads.After)
	}
	if reads.Before != nil || reads.NsChangePct != nil {
		t.Fatalf("loadtest entry should carry no baseline join: %+v", reads)
	}
	// Loadtest entries must not count toward the zero-alloc tally.
	if rep.Summary.ZeroAllocAfter != 2 {
		t.Fatalf("zero_alloc_after = %d, want 2", rep.Summary.ZeroAllocAfter)
	}
}

func TestRunRejectsBadLoadtestSpec(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "after.txt")
	if err := os.WriteFile(inPath, []byte(sampleAfter), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(inPath, "", filepath.Join(dir, "out.json"), []string{"no-equals-sign"}); err == nil {
		t.Fatal("run accepted a -loadtest spec without label=path")
	}
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"schema":"other/1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(inPath, "", filepath.Join(dir, "out.json"), []string{"x=" + badPath}); err == nil {
		t.Fatal("run accepted a loadtest report with the wrong schema")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(inPath, []byte("PASS\nok vsmartjoin 1s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(inPath, "", filepath.Join(dir, "out.json"), nil); err == nil {
		t.Fatal("run accepted input with no benchmark lines")
	}
}

func TestValidateRejectsMangledFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(p, []byte(`{"schema":"vsmartjoin-bench/1","benchmarks":[`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validate(p); err == nil {
		t.Fatal("validate accepted truncated JSON")
	}
	if err := os.WriteFile(p, []byte(`{"schema":"other","benchmarks":[{"name":"x","after":{"iterations":1,"ns_per_op":1,"bytes_per_op":0,"allocs_per_op":0}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validate(p); err == nil {
		t.Fatal("validate accepted wrong schema")
	}
}
