// Command benchjson turns `go test -bench -benchmem` text output into a
// machine-readable JSON report, optionally joined against a committed
// baseline capture of the same benchmarks.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -baseline bench/BASELINE_007.txt -out BENCH_007.json
//
// The report pairs every benchmark in the current run with its baseline
// line (matched by name after stripping the -GOMAXPROCS suffix) and
// computes the ns/op change. After writing, the tool re-reads the output
// file and fails unless it parses back as the same report, so a CI
// invocation of `make bench-json` also validates the artifact.
//
// -loadtest label=path (repeatable) folds a cmd/vsmartbench JSON
// report into the same trajectory: each operation class becomes a
// pseudo-benchmark entry named Loadtest/<label>/<class> whose ns/op is
// the measured mean latency and whose custom metrics carry the
// qps/p50/p99/p999/shed/error numbers — so the microbenchmarks and the
// end-to-end load results live in one BENCH_*.json document.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Pkg        string  `json:"pkg,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
	AllocsOp   float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units (hits/op, sims/op, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Entry joins a current result with its baseline counterpart, when one
// exists under the same benchmark name.
type Entry struct {
	Name   string  `json:"name"`
	Before *Result `json:"before,omitempty"`
	After  Result  `json:"after"`
	// NsChangePct is (after-before)/before ns/op as a percentage;
	// negative means the current run is faster. Omitted without a
	// baseline match.
	NsChangePct *float64 `json:"ns_change_pct,omitempty"`
}

// Report is the top-level BENCH_*.json document.
type Report struct {
	Schema         string  `json:"schema"`
	BaselineSource string  `json:"baseline_source,omitempty"`
	Benchmarks     []Entry `json:"benchmarks"`
	Summary        Summary `json:"summary"`
}

type Summary struct {
	Benchmarks      int     `json:"benchmarks"`
	Compared        int     `json:"compared"`
	ImprovedNs      int     `json:"improved_ns"`
	RegressedNs     int     `json:"regressed_ns"`
	BestNsChangePct float64 `json:"best_ns_change_pct"`
	ZeroAllocAfter  int     `json:"zero_alloc_after"`
}

const schema = "vsmartjoin-bench/1"

// parseBench reads `go test -bench` text, returning results keyed by
// benchmark name (minus the -GOMAXPROCS suffix) in input order.
func parseBench(r io.Reader) (names []string, byName map[string]Result, err error) {
	byName = make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := trimProcSuffix(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Pkg: pkg, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsOp = val
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		if _, dup := byName[name]; !dup {
			names = append(names, name)
		}
		byName[name] = res
	}
	return names, byName, sc.Err()
}

// trimProcSuffix drops the trailing -N GOMAXPROCS marker go test
// appends to benchmark names, so runs on different core counts still
// match the baseline.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// buildReport joins current results against the baseline and fills the
// summary counters.
func buildReport(names []string, after map[string]Result, before map[string]Result, baselineSource string) Report {
	rep := Report{Schema: schema, BaselineSource: baselineSource}
	for _, name := range names {
		e := Entry{Name: name, After: after[name]}
		if b, ok := before[name]; ok {
			b := b
			e.Before = &b
			if b.NsPerOp > 0 {
				pct := (e.After.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
				e.NsChangePct = &pct
				rep.Summary.Compared++
				switch {
				case pct < 0:
					rep.Summary.ImprovedNs++
				case pct > 0:
					rep.Summary.RegressedNs++
				}
				if pct < rep.Summary.BestNsChangePct {
					rep.Summary.BestNsChangePct = pct
				}
			}
		}
		if e.After.AllocsOp == 0 {
			rep.Summary.ZeroAllocAfter++
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	rep.Summary.Benchmarks = len(rep.Benchmarks)
	return rep
}

// loadtestReport mirrors the cmd/vsmartbench output fields the fold
// needs (the two commands cannot share a package — both are main — so
// the schema string is the contract).
type loadtestReport struct {
	Schema   string         `json:"schema"`
	TotalQPS float64        `json:"total_qps"`
	Reads    loadtestOp     `json:"reads"`
	Writes   loadtestOp     `json:"writes"`
	Config   map[string]any `json:"config"`
}

type loadtestOp struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	Shed   uint64  `json:"shed"`
	QPS    float64 `json:"qps"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
}

const loadtestSchema = "vsmartjoin-loadtest/1"

// loadtestEntries flattens one vsmartbench report into Loadtest/...
// pseudo-benchmark entries. They carry no baseline pairing — load
// numbers are compared run-to-run across BENCH_*.json files, not
// against the microbenchmark baseline text.
func loadtestEntries(label, path string) ([]Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep loadtestReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s is not valid JSON: %w", path, err)
	}
	if rep.Schema != loadtestSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, loadtestSchema)
	}
	if rep.Reads.Count == 0 && rep.Writes.Count == 0 {
		return nil, fmt.Errorf("%s: no completed operations", path)
	}
	var out []Entry
	for _, op := range []struct {
		class string
		o     loadtestOp
	}{{"reads", rep.Reads}, {"writes", rep.Writes}} {
		if op.o.Count == 0 {
			continue
		}
		out = append(out, Entry{
			Name: "Loadtest/" + label + "/" + op.class,
			After: Result{
				Iterations: int64(op.o.Count),
				NsPerOp:    op.o.MeanNs,
				Metrics: map[string]float64{
					"qps":     op.o.QPS,
					"p50_ns":  op.o.P50Ns,
					"p99_ns":  op.o.P99Ns,
					"p999_ns": op.o.P999Ns,
					"shed":    float64(op.o.Shed),
					"errors":  float64(op.o.Errors),
				},
			},
		})
	}
	return out, nil
}

// validate re-reads path and confirms it round-trips as a Report with at
// least one benchmark, so a truncated or mangled write fails the build
// rather than landing in the repo.
func validate(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s is not valid JSON: %w", path, err)
	}
	if rep.Schema != schema {
		return fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, schema)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks in report", path)
	}
	return nil
}

func run(inPath, baselinePath, outPath string, loadtests []string) error {
	in := io.Reader(os.Stdin)
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	names, after, err := parseBench(in)
	if err != nil {
		return fmt.Errorf("parsing bench output: %w", err)
	}
	if len(names) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	before := map[string]Result{}
	if baselinePath != "" {
		f, err := os.Open(baselinePath)
		if err != nil {
			return err
		}
		_, before, err = parseBench(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
		}
	}

	rep := buildReport(names, after, before, baselinePath)
	for _, spec := range loadtests {
		label, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-loadtest %q: want label=path", spec)
		}
		entries, err := loadtestEntries(label, path)
		if err != nil {
			return fmt.Errorf("loadtest %s: %w", label, err)
		}
		// Loadtest entries join the document but not the microbenchmark
		// summary counters: a mean-latency pseudo-benchmark is not a
		// zero-alloc candidate and has no ns/op baseline.
		rep.Benchmarks = append(rep.Benchmarks, entries...)
		rep.Summary.Benchmarks = len(rep.Benchmarks)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if outPath == "" {
		_, err := os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(outPath, raw, 0o644); err != nil {
		return err
	}
	if err := validate(outPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks (%d compared, %d improved, %d zero-alloc) -> %s\n",
		rep.Summary.Benchmarks, rep.Summary.Compared, rep.Summary.ImprovedNs, rep.Summary.ZeroAllocAfter, outPath)
	return nil
}

func main() {
	inPath := flag.String("in", "", "bench output file (default stdin)")
	baselinePath := flag.String("baseline", "", "baseline bench output to diff against")
	outPath := flag.String("out", "", "JSON report path (default stdout)")
	var loadtests []string
	flag.Func("loadtest", "vsmartbench JSON report to fold in, as label=path (repeatable)", func(v string) error {
		loadtests = append(loadtests, v)
		return nil
	})
	flag.Parse()
	if err := run(*inPath, *baselinePath, *outPath, loadtests); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
