// Command vsmartbench is the load harness behind the BENCH_*.json
// latency evidence: a closed-loop driver (in the Doppel benchmark-rig
// tradition — fixed worker count, configurable operation mix and skew,
// timed window) that aims a read/write workload at a live vsmartjoind
// daemon or cluster router and reports sustained QPS with p50/p99/p999
// latency percentiles per operation class.
//
// The workload is synthetic but shaped like the entity-resolution
// serving traffic the index exists for: a keyspace of entities whose
// popularity is zipf-skewed (hot entities get queried and rewritten
// far more than the tail), a read percentage splitting queries from
// upserts, and a churn percentage turning a slice of the writes into
// removes — so the daemon sees deletes, re-adds, and cache
// invalidation, not just a monotonically growing index.
//
// A run has three phases: preload (populate the keyspace through
// /add, skipped with -no-preload when the target is already loaded),
// warmup (drive the workload without recording, letting connection
// pools, caches, and the runtime settle), and the measured window.
// Latencies are recorded into internal/metrics histograms — the same
// fixed-bucket digests the daemon itself exports on /metrics — so the
// client-observed and server-observed distributions are directly
// comparable.
//
// The report is JSON on stdout (or -out). cmd/benchjson folds it into
// the BENCH_*.json trajectory via its -loadtest flag.
//
// Examples:
//
//	vsmartjoind -addr :8321 &
//	vsmartbench -target localhost:8321 -duration 10s -read-pct 90
//	vsmartbench -target localhost:9000 -concurrency 32 -zipf 1.2 -out loadtest.json
//	vsmartbench -target localhost:8321 -read-pct 0 -zipf 1.2 -write-burst 64   (batched write storm)
//
// Driving past saturation is a feature: with -concurrency far above
// the daemon's -max-inflight admission bound, the shed (429) count in
// the report shows the daemon degrading predictably — rejected
// requests are counted and excluded from the latency digests rather
// than queueing into a latency collapse.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"vsmartjoin/internal/cluster"
	"vsmartjoin/internal/metrics"
)

// Config is one run's shape, echoed into the report so an artifact is
// self-describing.
type Config struct {
	Targets     []string      `json:"targets"`
	Concurrency int           `json:"concurrency"`
	Duration    time.Duration `json:"duration_ns"`
	Warmup      time.Duration `json:"warmup_ns"`
	ReadPct     int           `json:"read_pct"`
	ChurnPct    int           `json:"churn_pct"`
	Entities    int           `json:"entities"`
	ElementsPer int           `json:"elements_per_entity"`
	Universe    int           `json:"element_universe"`
	Zipf        float64       `json:"zipf_s"`
	Threshold   float64       `json:"threshold"`
	TopK        int           `json:"topk"`
	// KNNK > 0 turns the read class into kNN queries against /knn with
	// this k (Threshold and TopK then don't apply).
	KNNK    int           `json:"knn_k"`
	Seed    int64         `json:"seed"`
	Preload bool          `json:"preload"`
	Timeout time.Duration `json:"timeout_ns"`
	// WriteBurst > 1 batches each worker's writes: mutations accumulate
	// until the burst size is reached and ship as one POST /bulk. The
	// write counters stay per mutation (a shed or failed batch counts
	// every op it carried), so batched and unbatched runs compare
	// directly — the write-storm evidence in BENCH_009.json is this
	// mode against WriteBurst 0.
	WriteBurst int `json:"write_burst"`
}

// OpReport is the measured outcome of one operation class.
type OpReport struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	Shed   uint64  `json:"shed"` // 429s from admission control
	QPS    float64 `json:"qps"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
}

// Report is the emitted JSON document.
type Report struct {
	Schema    string   `json:"schema"`
	Config    Config   `json:"config"`
	ElapsedNs int64    `json:"elapsed_ns"`
	TotalQPS  float64  `json:"total_qps"`
	Reads     OpReport `json:"reads"`
	Writes    OpReport `json:"writes"`
}

// Schema identifies the report format; benchjson checks it when
// folding a load-test report into a BENCH_*.json trajectory.
const Schema = "vsmartjoin-loadtest/1"

func main() {
	log.SetFlags(0)
	log.SetPrefix("vsmartbench: ")
	var (
		target      = flag.String("target", "localhost:8321", "daemon or router base URLs, comma-separated (round-robin)")
		concurrency = flag.Int("concurrency", 16, "closed-loop workers")
		duration    = flag.Duration("duration", 10*time.Second, "measured window")
		warmup      = flag.Duration("warmup", 2*time.Second, "unrecorded warmup before measuring")
		readPct     = flag.Int("read-pct", 90, "percent of operations that are queries (the rest are writes)")
		churnPct    = flag.Int("churn-pct", 10, "percent of writes that are removes (the rest are upserts)")
		entities    = flag.Int("entities", 10000, "keyspace size")
		elementsPer = flag.Int("elements-per-entity", 8, "elements per entity multiset")
		zipfS       = flag.Float64("zipf", 1.1, "zipf skew of entity popularity (s>1; 0 = uniform)")
		threshold   = flag.Float64("threshold", 0.5, "similarity threshold queries use (ignored with -topk)")
		topK        = flag.Int("topk", 0, "use top-k queries with this k instead of threshold queries")
		knnK        = flag.Int("knn-k", 0, "use kNN queries against /knn with this k instead of threshold queries")
		writeBurst  = flag.Int("write-burst", 0, "batch each worker's writes and ship them as one POST /bulk per this many mutations (0 or 1 = one request per write)")
		seed        = flag.Int64("seed", 1, "workload RNG seed")
		noPreload   = flag.Bool("no-preload", false, "skip populating the keyspace before the run")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		out         = flag.String("out", "", "JSON report path (default stdout)")
		check       = flag.String("check", "", "validate an existing report file instead of running (schema, non-zero QPS); exits non-zero on a malformed or empty report")
	)
	flag.Parse()

	if *check != "" {
		if err := checkReport(*check); err != nil {
			log.Fatal(err)
		}
		log.Printf("%s: well-formed report with traffic", *check)
		return
	}

	cfg := Config{
		Targets:     splitTargets(*target),
		Concurrency: *concurrency,
		Duration:    *duration,
		Warmup:      *warmup,
		ReadPct:     *readPct,
		ChurnPct:    *churnPct,
		Entities:    *entities,
		ElementsPer: *elementsPer,
		Zipf:        *zipfS,
		Threshold:   *threshold,
		TopK:        *topK,
		KNNK:        *knnK,
		Seed:        *seed,
		Preload:     !*noPreload,
		Timeout:     *timeout,
		WriteBurst:  *writeBurst,
	}
	rep, err := Run(cfg, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d reads (p99 %.2fms) + %d writes (p99 %.2fms) at %.0f qps -> %s",
		rep.Reads.Count, rep.Reads.P99Ns/1e6, rep.Writes.Count, rep.Writes.P99Ns/1e6, rep.TotalQPS, *out)
}

// checkReport is the CI smoke gate: the file must round-trip as a
// loadtest report whose measured window actually carried traffic.
func checkReport(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s is not valid JSON: %w", path, err)
	}
	switch {
	case rep.Schema != Schema:
		return fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, Schema)
	case rep.TotalQPS <= 0:
		return fmt.Errorf("%s: zero sustained QPS", path)
	case rep.Reads.Count+rep.Writes.Count == 0:
		return fmt.Errorf("%s: no completed operations", path)
	case rep.Reads.Count > 0 && rep.Reads.P50Ns <= 0:
		return fmt.Errorf("%s: reads recorded but p50 is zero", path)
	}
	return nil
}

// splitTargets normalizes the -target flag: comma-separated base URLs,
// "http://" assumed when no scheme is given.
func splitTargets(spec string) []string {
	var out []string
	for _, t := range strings.Split(spec, ",") {
		if t = strings.TrimSpace(t); t == "" {
			continue
		}
		if !strings.Contains(t, "://") {
			t = "http://" + t
		}
		out = append(out, strings.TrimRight(t, "/"))
	}
	return out
}

// Validate rejects configurations the driver cannot run.
func (cfg *Config) Validate() error {
	switch {
	case len(cfg.Targets) == 0:
		return fmt.Errorf("no targets")
	case cfg.Concurrency < 1:
		return fmt.Errorf("concurrency %d < 1", cfg.Concurrency)
	case cfg.Duration <= 0:
		return fmt.Errorf("duration %v <= 0", cfg.Duration)
	case cfg.ReadPct < 0 || cfg.ReadPct > 100:
		return fmt.Errorf("read-pct %d outside [0,100]", cfg.ReadPct)
	case cfg.ChurnPct < 0 || cfg.ChurnPct > 100:
		return fmt.Errorf("churn-pct %d outside [0,100]", cfg.ChurnPct)
	case cfg.Entities < 1:
		return fmt.Errorf("entities %d < 1", cfg.Entities)
	case cfg.ElementsPer < 1:
		return fmt.Errorf("elements-per-entity %d < 1", cfg.ElementsPer)
	case cfg.Zipf != 0 && cfg.Zipf <= 1:
		return fmt.Errorf("zipf %v must be > 1 (or 0 for uniform)", cfg.Zipf)
	case cfg.WriteBurst < 0:
		return fmt.Errorf("write-burst %d < 0", cfg.WriteBurst)
	case cfg.KNNK < 0:
		return fmt.Errorf("knn-k %d < 0", cfg.KNNK)
	case cfg.KNNK > 0 && cfg.TopK > 0:
		return fmt.Errorf("knn-k and topk are mutually exclusive")
	}
	return nil
}

// recorder accumulates one operation class across all workers. The
// histogram absorbs only successful operations: a shed or failed
// request has no meaningful service latency.
type recorder struct {
	lat    metrics.Histogram
	count  metrics.Counter
	errors metrics.Counter
	shed   metrics.Counter
}

func (r *recorder) report(elapsed time.Duration) OpReport {
	s := r.lat.Snapshot()
	return OpReport{
		Count:  uint64(r.count.Load()),
		Errors: uint64(r.errors.Load()),
		Shed:   uint64(r.shed.Load()),
		QPS:    float64(r.count.Load()) / elapsed.Seconds(),
		MeanNs: s.Mean(),
		P50Ns:  s.Quantile(0.50),
		P99Ns:  s.Quantile(0.99),
		P999Ns: s.Quantile(0.999),
	}
}

// Run executes preload, warmup, and the measured window, returning the
// report. logf narrates phases (tests pass a no-op).
func Run(cfg Config, logf func(string, ...any)) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Universe == 0 {
		// A shared element universe a quarter the keyspace size makes
		// entities overlap, so threshold queries return real match sets
		// instead of only the queried entity.
		cfg.Universe = cfg.Entities/4 + 1
	}
	d := driver{cfg: cfg, client: cluster.NewHTTPClient(cfg.Timeout, len(cfg.Targets))}

	if cfg.Preload {
		start := time.Now()
		if err := d.preload(); err != nil {
			return nil, fmt.Errorf("preload: %w", err)
		}
		logf("preloaded %d entities in %v", cfg.Entities, time.Since(start).Round(time.Millisecond))
	}
	if cfg.Warmup > 0 {
		logf("warming up for %v", cfg.Warmup)
		d.drive(cfg.Warmup, &recorder{}, &recorder{})
	}
	logf("measuring for %v with %d workers (%d%% reads)", cfg.Duration, cfg.Concurrency, cfg.ReadPct)
	reads, writes := &recorder{}, &recorder{}
	elapsed := d.drive(cfg.Duration, reads, writes)

	rep := &Report{
		Schema:    Schema,
		Config:    cfg,
		ElapsedNs: int64(elapsed),
		Reads:     reads.report(elapsed),
		Writes:    writes.report(elapsed),
	}
	rep.TotalQPS = rep.Reads.QPS + rep.Writes.QPS
	return rep, nil
}

type driver struct {
	cfg    Config
	client *http.Client
}

// entityName and elements generate the deterministic keyspace: entity
// i's multiset draws ElementsPer elements from the shared universe at
// an i-dependent stride, with small multiplicities.
func entityName(i int) string { return fmt.Sprintf("e%07d", i) }

func (d *driver) elements(i int) map[string]uint32 {
	m := make(map[string]uint32, d.cfg.ElementsPer)
	for j := 0; j < d.cfg.ElementsPer; j++ {
		el := (i*7 + j*j + 1) % d.cfg.Universe
		m[fmt.Sprintf("x%06d", el)] += uint32(1 + (i+j)%4)
	}
	return m
}

// preload populates the keyspace through /add with the run's worker
// count, failing fast on the first error — a dead target should stop
// the run before the measured window, not during it.
func (d *driver) preload() error {
	ids := make(chan int)
	errc := make(chan error, d.cfg.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < d.cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range ids {
				body, _ := json.Marshal(map[string]any{"entity": entityName(i), "elements": d.elements(i)})
				if _, err := d.post(d.target(i), "/add", body); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	for i := 0; i < d.cfg.Entities; i++ {
		select {
		case err := <-errc:
			close(ids)
			wg.Wait()
			return err
		case ids <- i:
		}
	}
	close(ids)
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

func (d *driver) target(i int) string { return d.cfg.Targets[i%len(d.cfg.Targets)] }

// drive runs the closed loop for window, recording into reads/writes,
// and returns the actual elapsed time (which the QPS math uses, so a
// slow final request does not inflate throughput).
func (d *driver) drive(window time.Duration, reads, writes *recorder) time.Duration {
	start := time.Now()
	deadline := start.Add(window)
	var wg sync.WaitGroup
	for w := 0; w < d.cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d.worker(w, deadline, reads, writes)
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// worker is one closed-loop client: sample an operation and an entity,
// issue the request, record, repeat until the deadline. With
// WriteBurst > 1 writes accumulate into a per-worker batch and ship as
// one /bulk request when the burst fills (and once more at the
// deadline, so a partial final batch is not dropped).
func (d *driver) worker(id int, deadline time.Time, reads, writes *recorder) {
	rng := rand.New(rand.NewSource(d.cfg.Seed + int64(id)*7919))
	var zipf *rand.Zipf
	if d.cfg.Zipf > 1 {
		zipf = rand.NewZipf(rng, d.cfg.Zipf, 1, uint64(d.cfg.Entities-1))
	}
	sample := func() int {
		if zipf != nil {
			return int(zipf.Uint64())
		}
		return rng.Intn(d.cfg.Entities)
	}
	var pending []cluster.BulkOp
	for n := 0; ; n++ {
		target := d.target(id + n)
		if time.Now().After(deadline) {
			if len(pending) > 0 {
				d.oneBulk(writes, target, pending)
			}
			return
		}
		i := sample()
		if rng.Intn(100) < d.cfg.ReadPct {
			path, body := d.queryBody(i)
			d.one(reads, target, path, body)
			continue
		}
		churn := rng.Intn(100) < d.cfg.ChurnPct
		if d.cfg.WriteBurst > 1 {
			op := cluster.BulkOp{Op: "add", Entity: entityName(i), Elements: d.elements(i)}
			if churn {
				op = cluster.BulkOp{Op: "remove", Entity: entityName(i)}
			}
			pending = append(pending, op)
			if len(pending) >= d.cfg.WriteBurst {
				d.oneBulk(writes, target, pending)
				pending = pending[:0]
			}
			continue
		}
		if churn {
			// Churn: remove the entity now, re-add it on a later write
			// draw — the daemon sees deletes and cache invalidation.
			body, _ := json.Marshal(map[string]any{"entity": entityName(i)})
			d.one(writes, target, "/remove", body)
		} else {
			body, _ := json.Marshal(map[string]any{"entity": entityName(i), "elements": d.elements(i)})
			d.one(writes, target, "/add", body)
		}
	}
}

func (d *driver) queryBody(i int) (path string, body []byte) {
	req := map[string]any{"elements": d.elements(i)}
	switch {
	case d.cfg.KNNK > 0:
		req["k"] = d.cfg.KNNK
		path = "/knn"
	case d.cfg.TopK > 0:
		req["topk"] = d.cfg.TopK
		path = "/query"
	default:
		req["threshold"] = d.cfg.Threshold
		path = "/query"
	}
	body, _ = json.Marshal(req)
	return path, body
}

// oneBulk ships one batched write and records it per mutation: the
// latency histogram takes one observation (the request), while count,
// errors, and shed absorb the whole batch — a 429 sheds every op it
// carried — so batched and unbatched runs report comparable per-op
// numbers.
func (d *driver) oneBulk(rec *recorder, target string, ops []cluster.BulkOp) {
	n := int64(len(ops))
	body, _ := json.Marshal(cluster.BulkRequest{Ops: ops})
	start := metrics.Now()
	status, err := d.post(target, "/bulk", body)
	switch {
	case status == http.StatusTooManyRequests:
		rec.shed.Add(n)
	case err != nil:
		rec.errors.Add(n)
	default:
		rec.lat.ObserveSince(start)
		rec.count.Add(n)
	}
}

// one issues a single operation and records its outcome.
func (d *driver) one(rec *recorder, target, path string, body []byte) {
	start := metrics.Now()
	status, err := d.post(target, path, body)
	switch {
	case status == http.StatusTooManyRequests:
		rec.shed.Inc()
	case err != nil:
		rec.errors.Inc()
	default:
		rec.lat.ObserveSince(start)
		rec.count.Inc()
	}
}

// post sends one JSON request, drains the response for connection
// reuse, and returns the status code. A /remove 404-equivalent is not
// possible (the endpoint answers 200 with removed:false), so any
// non-2xx is an error — except 429, which the caller counts as shed.
func (d *driver) post(target, path string, body []byte) (int, error) {
	resp, err := d.client.Post(target+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusTooManyRequests {
		return resp.StatusCode, nil
	}
	if resp.StatusCode/100 != 2 {
		return resp.StatusCode, fmt.Errorf("%s%s: %s", target, path, resp.Status)
	}
	return resp.StatusCode, nil
}
