package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"vsmartjoin"
	"vsmartjoin/internal/httpd"
)

func testConfig(target string) Config {
	return Config{
		Targets:     []string{target},
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Warmup:      50 * time.Millisecond,
		ReadPct:     80,
		ChurnPct:    10,
		Entities:    200,
		ElementsPer: 6,
		Zipf:        1.1,
		Threshold:   0.3,
		Seed:        1,
		Preload:     true,
		Timeout:     5 * time.Second,
	}
}

// TestRunAgainstNode is the smoke the CI job leans on: a short run
// against an in-process node must complete, sustain non-zero QPS, and
// emit a report that round-trips as JSON under the loadtest schema.
func TestRunAgainstNode(t *testing.T) {
	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: "ruzicka"})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
	defer ts.Close()

	rep, err := Run(testConfig(ts.URL), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Fatalf("schema = %q, want %q", rep.Schema, Schema)
	}
	if rep.Reads.Count == 0 || rep.Writes.Count == 0 {
		t.Fatalf("no traffic recorded: reads=%d writes=%d", rep.Reads.Count, rep.Writes.Count)
	}
	if rep.TotalQPS <= 0 {
		t.Fatalf("total qps = %v", rep.TotalQPS)
	}
	if rep.Reads.Errors != 0 || rep.Writes.Errors != 0 {
		t.Fatalf("errors against a healthy node: reads=%d writes=%d", rep.Reads.Errors, rep.Writes.Errors)
	}
	if rep.Reads.P50Ns <= 0 || rep.Reads.P99Ns < rep.Reads.P50Ns {
		t.Fatalf("implausible read percentiles: p50=%v p99=%v", rep.Reads.P50Ns, rep.Reads.P99Ns)
	}
	// The preload populated the index; reads against it should have
	// found the entities still present (churn removes a few).
	if ix.Len() == 0 {
		t.Fatal("index empty after run")
	}

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report does not round-trip as JSON: %v", err)
	}
	if back.Reads.Count != rep.Reads.Count || back.Config.Entities != rep.Config.Entities {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back.Reads, rep.Reads)
	}
}

// TestRunKNNReads points the read class at /knn and demands real
// traffic with no errors — the op class the BENCH_010.json kNN load
// legs are recorded with.
func TestRunKNNReads(t *testing.T) {
	ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: "ruzicka"})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
	defer ts.Close()

	cfg := testConfig(ts.URL)
	cfg.KNNK = 5
	rep, err := Run(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads.Count == 0 {
		t.Fatal("no kNN reads recorded")
	}
	if rep.Reads.Errors != 0 {
		t.Fatalf("%d kNN read errors against a healthy node", rep.Reads.Errors)
	}
	if rep.Config.KNNK != 5 {
		t.Fatalf("knn_k not echoed into the report config: %+v", rep.Config)
	}
}

// TestRunCountsShedResponses confirms the driver's admission-control
// accounting: 429s land in the shed column (excluded from the latency
// digest), never the error column. The overload itself is simulated —
// a stub shedding every third request — because a real single-CPU
// in-memory daemon finishes each request before the next is admitted;
// the genuine 429-under-saturation path is covered in internal/httpd.
func TestRunCountsShedResponses(t *testing.T) {
	var n atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"matches":[]}`))
	}))
	defer ts.Close()

	cfg := testConfig(ts.URL)
	cfg.Preload = false
	cfg.Warmup = 0
	cfg.Duration = 150 * time.Millisecond
	rep, err := Run(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads.Errors != 0 || rep.Writes.Errors != 0 {
		t.Fatalf("shed responses miscounted as errors: %+v %+v", rep.Reads, rep.Writes)
	}
	if rep.Reads.Shed == 0 && rep.Writes.Shed == 0 {
		t.Fatal("a server shedding every third request produced no shed count")
	}
	if rep.Reads.Count == 0 {
		t.Fatal("accepted requests were not counted")
	}
}

func TestConfigValidate(t *testing.T) {
	base := testConfig("http://localhost:1")
	bad := []func(*Config){
		func(c *Config) { c.Targets = nil },
		func(c *Config) { c.Concurrency = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.ReadPct = 101 },
		func(c *Config) { c.ChurnPct = -1 },
		func(c *Config) { c.Entities = 0 },
		func(c *Config) { c.ElementsPer = 0 },
		func(c *Config) { c.Zipf = 0.5 },
		func(c *Config) { c.KNNK = -1 },
		func(c *Config) { c.KNNK = 5; c.TopK = 5 },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("Validate rejected the base config: %v", err)
	}
}

func TestSplitTargets(t *testing.T) {
	got := splitTargets("localhost:8321, http://other:9000/,")
	want := []string{"http://localhost:8321", "http://other:9000"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("splitTargets = %v, want %v", got, want)
	}
}
