// Command vsmartjoin runs an exact all-pair similarity join over a TSV
// trace of entity–element observations.
//
// Input format (stdin or -in file), one observation per line:
//
//	entity<TAB>element<TAB>count
//
// The count column is optional (default 1). Output: one similar pair per
// line, "entityA<TAB>entityB<TAB>similarity", sorted.
//
// Example:
//
//	vsmartjoin -measure ruzicka -t 0.5 -algorithm sharding -in trace.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"vsmartjoin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vsmartjoin: ")
	var (
		in        = flag.String("in", "", "input TSV file (default stdin)")
		measure   = flag.String("measure", "ruzicka", "similarity measure: ruzicka, jaccard, dice, set-dice, cosine, set-cosine, vector-cosine, overlap")
		threshold = flag.Float64("t", 0.5, "similarity threshold in [0,1]")
		algorithm = flag.String("algorithm", "online-aggregation", "joining algorithm: online-aggregation, lookup, sharding")
		machines  = flag.Int("machines", 16, "simulated cluster size")
		memory    = flag.Int64("memory", 1<<30, "simulated per-machine memory budget in bytes")
		hadoop    = flag.Bool("hadoop", false, "Hadoop-compatible mode (no secondary keys)")
		shufbuf   = flag.Int64("shuffle-buffer", 0, "per-map-task shuffle buffer in bytes before spilling sorted runs to disk (0 = all in memory)")
		stopq     = flag.Int("stopq", 0, "drop elements shared by more than q entities (0 = keep all)")
		shardc    = flag.Int("shardc", 0, "Sharding split parameter C (0 = default)")
		comms     = flag.Bool("communities", false, "print connected components instead of pairs")
		showStats = flag.Bool("stats", false, "print simulated cluster stats to stderr")
	)
	flag.Parse()
	// The library treats negative thresholds as "use the default"; the flag
	// already has an explicit default, so a negative here is a typo.
	if *threshold < 0 {
		log.Fatalf("threshold %v outside [0, 1]", *threshold)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	d, lines, err := readTrace(r)
	if err != nil {
		log.Fatal(err)
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "read %d observations, %d entities\n", lines, d.Len())
	}

	res, err := vsmartjoin.AllPairs(d, vsmartjoin.Options{
		Measure:            *measure,
		Threshold:          *threshold,
		Algorithm:          *algorithm,
		Machines:           *machines,
		MemPerMachine:      *memory,
		ShuffleBufferBytes: *shufbuf,
		HadoopCompat:       *hadoop,
		StopWordQ:          *stopq,
		ShardC:             *shardc,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *comms {
		for i, c := range res.Communities() {
			fmt.Fprintf(w, "community-%d\t%s\n", i+1, strings.Join(c, ","))
		}
	} else {
		for _, p := range res.Pairs {
			fmt.Fprintf(w, "%s\t%s\t%.6f\n", p.A, p.B, p.Similarity)
		}
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "%d pairs; %d MapReduce jobs; simulated %.1fs (joining %.1fs, similarity %.1fs); spilled %dB\n",
			len(res.Pairs), res.Stats.Jobs, res.Stats.TotalSeconds,
			res.Stats.JoiningSeconds, res.Stats.SimilaritySeconds, res.Stats.SpilledBytes)
	}
}

// readTrace parses the TSV observation format.
func readTrace(r io.Reader) (*vsmartjoin.Dataset, int, error) {
	d := vsmartjoin.NewDataset()
	counts := map[string]map[string]uint32{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 2 {
			return nil, lines, fmt.Errorf("line %d: want entity<TAB>element[<TAB>count], got %q", lines+1, line)
		}
		count := uint32(1)
		if len(fields) >= 3 {
			n, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, lines, fmt.Errorf("line %d: bad count %q: %v", lines+1, fields[2], err)
			}
			count = uint32(n)
		}
		m := counts[fields[0]]
		if m == nil {
			m = map[string]uint32{}
			counts[fields[0]] = m
			order = append(order, fields[0])
		}
		m[fields[1]] += count
		lines++
	}
	if err := sc.Err(); err != nil {
		return nil, lines, err
	}
	// Add entities in first-seen order, not map order: entity IDs feed the
	// record keys and partition hashes, so identical inputs must produce
	// identical simulated runs.
	for _, entity := range order {
		d.Add(entity, counts[entity])
	}
	return d, lines, nil
}
