// Command vsmartjoin runs an exact all-pair similarity join over a TSV
// trace of entity–element observations, or bulk-builds a serving index
// from the same trace.
//
// Input format (stdin or -in file, gzip-decompressed on a .gz suffix),
// one observation per line:
//
//	entity<TAB>element<TAB>count
//
// The count column is optional (default 1). Output: one similar pair per
// line, "entityA<TAB>entityB<TAB>similarity", sorted.
//
// With -build-index the trace is not joined: it streams through the
// batch machinery into a durable index directory — per-shard snapshot
// files a vsmartjoind daemon (or vsmartjoin.OpenIndex) opens instantly,
// with no write-ahead log to replay. This is the cold-start path for
// large corpora: one batch job instead of one logged Add per entity.
//
// With -knn k the trace is not threshold-joined either: the batch
// all-k-nearest-neighbors pipeline computes every entity's exact k
// nearest entities under the distance 1 − similarity, printed one
// neighbor per line as "entity<TAB>neighbor<TAB>distance", entities
// sorted, neighbors nearest first.
//
// Examples:
//
//	vsmartjoin -measure ruzicka -t 0.5 -algorithm sharding -in trace.tsv
//	vsmartjoin -measure jaccard -knn 10 -in trace.tsv
//	vsmartjoin -measure ruzicka -shards 8 -build-index /var/lib/vsmartjoin -in trace.tsv.gz
//	vsmartjoind -measure ruzicka -data-dir /var/lib/vsmartjoin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"vsmartjoin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vsmartjoin: ")
	var (
		in         = flag.String("in", "", "input TSV file, .gz accepted (default stdin)")
		measure    = flag.String("measure", "ruzicka", "similarity measure: ruzicka, jaccard, dice, set-dice, cosine, set-cosine, vector-cosine, overlap")
		threshold  = flag.Float64("t", 0.5, "similarity threshold in [0,1]")
		algorithm  = flag.String("algorithm", "online-aggregation", "joining algorithm: online-aggregation, lookup, sharding")
		machines   = flag.Int("machines", 16, "simulated cluster size")
		memory     = flag.Int64("memory", 1<<30, "simulated per-machine memory budget in bytes")
		hadoop     = flag.Bool("hadoop", false, "Hadoop-compatible mode (no secondary keys)")
		shufbuf    = flag.Int64("shuffle-buffer", 0, "per-map-task shuffle buffer in bytes before spilling sorted runs to disk (0 = all in memory)")
		stopq      = flag.Int("stopq", 0, "drop elements shared by more than q entities (0 = keep all)")
		shardc     = flag.Int("shardc", 0, "Sharding split parameter C (0 = default)")
		comms      = flag.Bool("communities", false, "print connected components instead of pairs")
		showStats  = flag.Bool("stats", false, "print simulated cluster stats to stderr")
		knnK       = flag.Int("knn", 0, "compute each entity's k nearest neighbors (distance 1-similarity) instead of a threshold join")
		buildIndex = flag.String("build-index", "", "bulk-build a durable serving index into this directory instead of joining")
		shards     = flag.Int("shards", 1, "shard count of the built index (with -build-index)")
		partitions = flag.Int("build-cluster", 0, "with -build-index: carve the corpus into this many per-node index directories (node-000, ...) for a vsmartjoind cluster")
	)
	flag.Parse()
	// The library treats negative thresholds as "use the default"; the flag
	// already has an explicit default, so a negative here is a typo.
	if *threshold < 0 {
		log.Fatalf("threshold %v outside [0, 1]", *threshold)
	}

	var d *vsmartjoin.Dataset
	var lines int
	var err error
	if *in != "" {
		d, lines, err = vsmartjoin.ReadTraceFile(*in)
	} else {
		d, lines, err = vsmartjoin.ReadTrace(os.Stdin)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "read %d observations, %d entities\n", lines, d.Len())
	}

	if *buildIndex != "" {
		opts := vsmartjoin.IndexOptions{
			Measure:                 *measure,
			Shards:                  *shards,
			Dir:                     *buildIndex,
			BuildShuffleBufferBytes: *shufbuf,
		}
		if *partitions > 0 {
			cs, err := vsmartjoin.BuildClusterFiles(d, opts, *partitions)
			if err != nil {
				log.Fatal(err)
			}
			for p, bs := range cs.Nodes {
				fmt.Fprintf(os.Stderr, "built %s/%s: %d entities in %d shards\n",
					*buildIndex, vsmartjoin.NodeDirName(p), bs.Entities, bs.Shards)
			}
			return
		}
		bs, err := vsmartjoin.BuildIndexFiles(d, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "built %s: %d entities in %d shards (simulated %.1fs, spilled %dB)\n",
			*buildIndex, bs.Entities, bs.Shards, bs.SimulatedSeconds, bs.SpilledBytes)
		return
	}

	if *knnK > 0 {
		res, err := vsmartjoin.AllKNN(d, *knnK, vsmartjoin.Options{
			Measure:            *measure,
			Machines:           *machines,
			MemPerMachine:      *memory,
			ShuffleBufferBytes: *shufbuf,
			HadoopCompat:       *hadoop,
		})
		if err != nil {
			log.Fatal(err)
		}
		entities := make([]string, 0, len(res.Neighbors))
		for name := range res.Neighbors {
			entities = append(entities, name)
		}
		sort.Strings(entities)
		w := bufio.NewWriter(os.Stdout)
		for _, name := range entities {
			for _, n := range res.Neighbors[name] {
				fmt.Fprintf(w, "%s\t%s\t%.6f\n", name, n.Entity, n.Distance)
			}
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if *showStats {
			fmt.Fprintf(os.Stderr, "%d entities; %d MapReduce jobs; simulated %.1fs; groups probed %d, pruned %d; spilled %dB\n",
				len(res.Neighbors), res.Stats.Jobs, res.Stats.TotalSeconds,
				res.Stats.GroupsProbed, res.Stats.GroupsPruned, res.Stats.SpilledBytes)
		}
		return
	}

	res, err := vsmartjoin.AllPairs(d, vsmartjoin.Options{
		Measure:            *measure,
		Threshold:          *threshold,
		Algorithm:          *algorithm,
		Machines:           *machines,
		MemPerMachine:      *memory,
		ShuffleBufferBytes: *shufbuf,
		HadoopCompat:       *hadoop,
		StopWordQ:          *stopq,
		ShardC:             *shardc,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	if *comms {
		for i, c := range res.Communities() {
			fmt.Fprintf(w, "community-%d\t%s\n", i+1, strings.Join(c, ","))
		}
	} else {
		for _, p := range res.Pairs {
			fmt.Fprintf(w, "%s\t%s\t%.6f\n", p.A, p.B, p.Similarity)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "%d pairs; %d MapReduce jobs; simulated %.1fs (joining %.1fs, similarity %.1fs); spilled %dB\n",
			len(res.Pairs), res.Stats.Jobs, res.Stats.TotalSeconds,
			res.Stats.JoiningSeconds, res.Stats.SimilaritySeconds, res.Stats.SpilledBytes)
	}
}
