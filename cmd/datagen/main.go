// Command datagen writes a synthetic IP–cookie trace in the TSV format
// consumed by cmd/vsmartjoin, with the planted proxy ground truth on a
// side channel.
//
//	datagen -preset tiny -out trace.tsv -truth truth.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"vsmartjoin/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		preset = flag.String("preset", "tiny", "trace preset: tiny, small, realistic")
		seed   = flag.Int64("seed", 0, "override the preset's seed (0 = keep)")
		out    = flag.String("out", "", "output TSV file (default stdout)")
		truth  = flag.String("truth", "", "optional ground-truth output file (community<TAB>ip per line)")
	)
	flag.Parse()

	var cfg datagen.TraceConfig
	switch *preset {
	case "tiny":
		cfg = datagen.TinyConfig()
	case "small":
		cfg = datagen.SmallConfig()
	case "realistic":
		cfg = datagen.RealisticConfig()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	tr, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	var tuples int64
	for _, m := range tr.Multisets {
		for _, e := range m.Entries {
			fmt.Fprintf(w, "ip-%d\tcookie-%d\t%d\n", uint64(m.ID), uint64(e.Elem), e.Count)
			tuples++
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tw := bufio.NewWriter(f)
		for g, members := range tr.Communities {
			for _, id := range members {
				fmt.Fprintf(tw, "community-%d\tip-%d\n", g+1, uint64(id))
			}
		}
		if err := tw.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "datagen: %d multisets, %d elements, %d tuples, %d planted communities\n",
		len(tr.Multisets), tr.NumElements, tuples, len(tr.Communities))
}
