// Command calibrate tunes the experiment cost model. It executes each join
// algorithm once on the scaled small dataset, then re-prices the captured
// cost profiles under a grid of candidate coefficient sets — no re-runs —
// and prints the ratios the paper reports so a maintainer can pick
// coefficients that reproduce the published shapes:
//
//   - VCL ≈ 30× Online-Aggregation at t = 0.1, ≈ 5× at t = 0.9 (Fig 4)
//   - ordering OA < Lookup < Sharding, with slight differences (Fig 4)
//   - 100→900 machine run-time drops: OA 53%, Lookup 32%, VCL 35% (Fig 5)
//   - VCL kernel map ≥ 86% of its total (Fig 4 discussion)
package main

import (
	"flag"
	"fmt"
	"log"

	"vsmartjoin/internal/core"
	"vsmartjoin/internal/datagen"
	"vsmartjoin/internal/experiments"
	"vsmartjoin/internal/mr"
	"vsmartjoin/internal/records"
	"vsmartjoin/internal/similarity"
	"vsmartjoin/internal/stats"
	"vsmartjoin/internal/vcl"
)

func main() {
	verbose := flag.Bool("v", false, "print per-job raw quantities")
	flag.Parse()

	trace, err := datagen.Generate(datagen.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	input := records.BuildInput("small", trace.Multisets, experiments.NumReducers)
	cluster := experiments.Cluster(experiments.DefaultMachines)
	cluster.Cost.MaxTaskSeconds = 0 // measure raw; the deadline is chosen afterwards

	runs := map[string]mr.PipelineStats{}
	kernelJob := map[string]string{}
	for _, alg := range []core.Algorithm{core.OnlineAggregation, core.Lookup, core.Sharding} {
		res, err := core.Join(cluster, input, core.Config{
			Measure: similarity.Ruzicka{}, Threshold: 0.5, Algorithm: alg,
			NumReducers: experiments.NumReducers,
		})
		if err != nil {
			log.Fatalf("%s: %v", alg, err)
		}
		runs[alg.String()] = res.Stats
		fmt.Printf("ran %s: %d pairs\n", alg, len(res.Pairs))
	}
	for _, t := range []float64{0.1, 0.5, 0.9} {
		name := fmt.Sprintf("vcl@%.1f", t)
		res, err := vcl.Join(cluster, input, vcl.Config{
			Measure: similarity.Ruzicka{}, Threshold: t, NumReducers: experiments.NumReducers,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		runs[name] = res.Stats
		kernelJob[name] = "vcl-kernel"
		fmt.Printf("ran %s: %d pairs\n", name, len(res.Pairs))
	}

	if *verbose {
		for name, ps := range runs {
			fmt.Printf("--- %s ---\n", name)
			for _, j := range ps.Jobs {
				var mapBytes, maxTaskBytes int64
				for _, t := range j.Profile.MapTasks {
					mapBytes += t.OutBytes
					if t.OutBytes > maxTaskBytes {
						maxTaskBytes = t.OutBytes
					}
				}
				fmt.Printf("  %-22s mapIn=%8d mapOut=%8d outB=%9d maxTaskOutB=%9d shuffle=%9dB reduceOut=%8d side=%7dB\n",
					j.Name, j.MapInRecords, j.MapOutRecords, mapBytes, maxTaskBytes, j.ShuffleBytes, j.ReduceOutRecs, j.Profile.SideBytes)
			}
		}
	}

	eval := func(ps mr.PipelineStats, w int, cm mr.CostModel) (total, slowest float64) {
		for _, j := range ps.Jobs {
			t := j.Profile.Evaluate(w, cm)
			total += t.Total
			for _, c := range taskMax(j.Profile.MapTasks, cm) {
				if c > slowest {
					slowest = c
				}
			}
		}
		return total, slowest
	}

	grid := []mr.CostModel{experiments.CostModel()}
	for _, startup := range []float64{100, 150, 200} {
		for _, io := range []float64{5e-4, 1e-3, 2e-3} {
			for _, side := range []float64{2.5e-4, 5e-4, 1e-3} {
				grid = append(grid, mr.CostModel{
					JobStartup: startup, TaskOverhead: 0.01,
					CPUPerRecord: 1e-2, IOPerByte: io, NetPerByte: io,
					SideLoadPerByte: side,
				})
			}
		}
	}

	tbl := stats.Table{
		Title: "candidate cost models @ W=500 (plus 100→900 drops)",
		Headers: []string{"startup", "io", "side", "oa", "lk", "sh", "order",
			"vcl.1/oa", "vcl.9/oa", "kmap%", "drop-oa", "drop-lk", "drop-vcl", "slowest-vclmap"},
	}
	for _, cm := range grid {
		oa, _ := eval(runs["online-aggregation"], 500, cm)
		lk, _ := eval(runs["lookup"], 500, cm)
		sh, _ := eval(runs["sharding"], 500, cm)
		v1, v1slow := eval(runs["vcl@0.1"], 500, cm)
		v9, _ := eval(runs["vcl@0.9"], 500, cm)
		order := "BAD"
		if oa < lk && lk < sh {
			order = "ok"
		}
		v1stats := runs["vcl@0.1"]
		kj, _ := v1stats.Job("vcl-kernel")
		kt := kj.Profile.Evaluate(500, cm)
		drop := func(name string) float64 {
			a, _ := eval(runs[name], 100, cm)
			b, _ := eval(runs[name], 900, cm)
			return 100 * (1 - b/a)
		}
		tbl.AddRow(
			fmt.Sprintf("%.0f", cm.JobStartup), fmt.Sprintf("%.0e", cm.IOPerByte), fmt.Sprintf("%.1e", cm.SideLoadPerByte),
			fmt.Sprintf("%.0f", oa), fmt.Sprintf("%.0f", lk), fmt.Sprintf("%.0f", sh), order,
			fmt.Sprintf("%.1f", v1/oa), fmt.Sprintf("%.1f", v9/oa),
			fmt.Sprintf("%.0f", 100*(kt.Map+kt.Startup)/v1),
			fmt.Sprintf("%.0f", drop("online-aggregation")), fmt.Sprintf("%.0f", drop("lookup")),
			fmt.Sprintf("%.0f", drop("vcl@0.1")),
			fmt.Sprintf("%.0f", v1slow),
		)
	}
	fmt.Println(tbl.String())
}

// taskMax prices each map task under cm.
func taskMax(tasks []mr.TaskIO, cm mr.CostModel) []float64 {
	out := make([]float64, len(tasks))
	for i, t := range tasks {
		out[i] = t.Cost(cm)
	}
	return out
}
