package vsmartjoin

import (
	"errors"
	"math"
	"testing"

	"vsmartjoin/internal/mr"
)

func demoDataset() *Dataset {
	d := NewDataset()
	d.Add("ip-1", map[string]uint32{"a": 3, "b": 1, "c": 2})
	d.Add("ip-2", map[string]uint32{"a": 2, "b": 2, "c": 2})
	d.Add("ip-3", map[string]uint32{"z": 9, "y": 4})
	d.Add("ip-4", map[string]uint32{"z": 8, "y": 5})
	d.Add("ip-5", map[string]uint32{"q": 1})
	return d
}

func TestAllPairsQuickstart(t *testing.T) {
	res, err := AllPairs(demoDataset(), Options{Measure: "ruzicka", Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("pairs: %v", res.Pairs)
	}
	if res.Pairs[0].A != "ip-1" || res.Pairs[0].B != "ip-2" {
		t.Fatalf("pair 0: %v", res.Pairs[0])
	}
	if res.Pairs[1].A != "ip-3" || res.Pairs[1].B != "ip-4" {
		t.Fatalf("pair 1: %v", res.Pairs[1])
	}
	if res.Stats.TotalSeconds <= 0 || res.Stats.Jobs != 3 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	if res.Stats.OutputPairs != 2 {
		t.Fatalf("output pairs counter: %d", res.Stats.OutputPairs)
	}
}

func TestAllPairsAlgorithmsAgree(t *testing.T) {
	var base []Pair
	for i, alg := range []string{AlgorithmOnlineAggregation, AlgorithmLookup, AlgorithmSharding} {
		res, err := AllPairs(demoDataset(), Options{Threshold: 0.5, Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if i == 0 {
			base = res.Pairs
			continue
		}
		if len(res.Pairs) != len(base) {
			t.Fatalf("%s: %v vs %v", alg, res.Pairs, base)
		}
		for j := range base {
			if res.Pairs[j] != base[j] {
				t.Fatalf("%s pair %d: %v vs %v", alg, j, res.Pairs[j], base[j])
			}
		}
	}
}

func TestCommunities(t *testing.T) {
	res, err := AllPairs(demoDataset(), Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	comms := res.Communities()
	if len(comms) != 2 {
		t.Fatalf("communities: %v", comms)
	}
	if comms[0][0] != "ip-1" && comms[0][0] != "ip-3" {
		t.Fatalf("members: %v", comms)
	}
}

func TestHadoopCompatDefaultsToSharding(t *testing.T) {
	res, err := AllPairs(demoDataset(), Options{Threshold: 0.5, HadoopCompat: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Jobs != 4 { // sharding1, sharding2, similarity1, similarity2
		t.Fatalf("jobs: %d", res.Stats.Jobs)
	}
	// Online-aggregation must be rejected in Hadoop mode.
	if _, err := AllPairs(demoDataset(), Options{
		Threshold: 0.5, HadoopCompat: true, Algorithm: AlgorithmOnlineAggregation,
	}); err == nil {
		t.Fatal("online-aggregation should fail in Hadoop mode")
	}
}

func TestAddMergesDuplicates(t *testing.T) {
	d := NewDataset()
	d.Add("e", map[string]uint32{"x": 1})
	d.Add("e", map[string]uint32{"x": 2, "y": 1})
	if d.Len() != 1 {
		t.Fatalf("len: %d", d.Len())
	}
	sim, err := Similarity("ruzicka", map[string]uint32{"x": 3, "y": 1}, map[string]uint32{"x": 3, "y": 1})
	if err != nil || sim != 1 {
		t.Fatalf("similarity: %v %v", sim, err)
	}
}

func TestAddSetAndByID(t *testing.T) {
	d := NewDataset()
	d.AddSet("doc-1", []string{"w1", "w2", "w3"})
	d.AddSet("doc-2", []string{"w2", "w3", "w4"})
	res, err := AllPairs(d, Options{Measure: "jaccard", Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || math.Abs(res.Pairs[0].Similarity-0.5) > 1e-12 {
		t.Fatalf("pairs: %v", res.Pairs)
	}

	n := NewDataset()
	n.AddByID(10, map[uint64]uint32{1: 1, 2: 1})
	n.AddByID(20, map[uint64]uint32{1: 1, 2: 1})
	nres, err := AllPairs(n, Options{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(nres.Pairs) != 1 || nres.Pairs[0].A != "10" || nres.Pairs[0].B != "20" {
		t.Fatalf("numbered pairs: %v", nres.Pairs)
	}
}

func TestStopWords(t *testing.T) {
	d := NewDataset()
	for i := 0; i < 20; i++ {
		d.Add(string(rune('a'+i)), map[string]uint32{"shared": 5, string(rune('A' + i)): 1})
	}
	res, err := AllPairs(d, Options{Threshold: 0.3, StopWordQ: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("stop word survived: %v", res.Pairs)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := AllPairs(nil, Options{}); err == nil {
		t.Fatal("nil dataset should fail")
	}
	if _, err := AllPairs(NewDataset(), Options{}); err == nil {
		t.Fatal("empty dataset should fail")
	}
	if _, err := AllPairs(demoDataset(), Options{Measure: "nope"}); err == nil {
		t.Fatal("unknown measure should fail")
	}
	if _, err := AllPairs(demoDataset(), Options{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if _, err := Similarity("nope", nil, nil); err == nil {
		t.Fatal("unknown measure should fail")
	}
}

func TestAllMeasuresThroughAPI(t *testing.T) {
	for _, m := range []string{"ruzicka", "jaccard", "dice", "set-dice", "cosine", "set-cosine", "vector-cosine", "overlap"} {
		res, err := AllPairs(demoDataset(), Options{Measure: m, Threshold: 0.4})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for _, p := range res.Pairs {
			if p.Similarity < 0.4-1e-9 || p.Similarity > 1+1e-9 {
				t.Fatalf("%s: out-of-range pair %v", m, p)
			}
		}
	}
}

func TestTinyMemoryOOMPropagates(t *testing.T) {
	d := demoDataset()
	_, err := AllPairs(d, Options{Threshold: 0.5, Algorithm: AlgorithmLookup, MemPerMachine: 10})
	if err == nil {
		t.Fatal("expected OOM with a 10-byte budget")
	}
	if !errors.Is(err, mr.ErrOutOfMemory) {
		t.Fatalf("unexpected error: %v", err)
	}
}
