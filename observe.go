package vsmartjoin

import "vsmartjoin/internal/metrics"

// LatencySummary is the JSON-friendly digest of a latency histogram:
// the count and the mean/p50/p99/p999 in nanoseconds. Percentiles are
// extracted from log-spaced fixed buckets (internal/metrics), so each
// is accurate to about ±9% — distribution shape, not an exact order
// statistic. A zero Count means the summary is empty and the other
// fields are 0.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
}

// summarize digests a histogram snapshot into the public form.
func summarize(s metrics.Snapshot) LatencySummary {
	return LatencySummary{
		Count:  s.Count,
		MeanNs: s.Mean(),
		P50Ns:  s.Quantile(0.50),
		P99Ns:  s.Quantile(0.99),
		P999Ns: s.Quantile(0.999),
	}
}

// SizeSummary is the JSON-friendly digest of a size distribution
// (records per batch, records per group commit): count of
// observations, mean, and p50/p99 with LatencySummary's bucket
// accuracy caveat (power-of-two buckets, so within a factor of two).
// A zero Count means empty.
type SizeSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// summarizeSize digests a size-histogram snapshot into the public form.
func summarizeSize(s metrics.SizeSnapshot) SizeSummary {
	return SizeSummary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P99:   s.Quantile(0.99),
	}
}

// IndexMetrics is the full-resolution capture of an Index's latency
// histograms — what the /metrics endpoint (internal/httpd) renders as
// Prometheus bucket series. IndexStats carries the same distributions
// digested to LatencySummary; this form keeps every bucket so an
// external aggregator can merge distributions across processes.
type IndexMetrics struct {
	// Query times uncached public queries (threshold, entity, top-k)
	// end to end, sampled one query in eight per pooled query buffer so
	// the timing itself stays off the hot path; cache hits are counted
	// in IndexStats but not timed.
	Query metrics.Snapshot
	// Merge is the cross-shard merge step of multi-shard fan-outs.
	Merge metrics.Snapshot
	// WALAppend and WALFsync are durability stalls, merged across the
	// per-shard logs; both are empty for a volatile index.
	WALAppend metrics.Snapshot
	WALFsync  metrics.Snapshot
	// WALCommitWait is how long acknowledged mutations waited for the
	// group commit covering them — the latency cost of DurabilitySync,
	// paid outside every lock. Empty under DurabilityOS.
	WALCommitWait metrics.Snapshot
	// WALBatch is the records-per-AppendBatch distribution (how large
	// the batches arriving at the logs are); WALGroupCommit is the
	// records-per-fsync distribution of the group committer (the
	// amortization it achieves). Both merged across shards.
	WALBatch       metrics.SizeSnapshot
	WALGroupCommit metrics.SizeSnapshot
	// WALRecords counts every record appended across shards and
	// WALFsyncs every fsync issued; their ratio inverted —
	// WALFsyncs/WALRecords — is the fsyncs-per-mutation cost the
	// group-commit layer is amortizing down.
	WALRecords int64
	WALFsyncs  int64
}

// ClusterMetrics is the full-resolution capture of a Cluster router's
// latency histograms — the /metrics counterpart of the digests in
// ClusterStats.
type ClusterMetrics struct {
	// Write times quorum writes to their decision point; Query times
	// scatter-gather queries end to end.
	Write metrics.Snapshot
	Query metrics.Snapshot
}

// Metrics captures the router's latency histograms.
func (c *Cluster) Metrics() ClusterMetrics {
	m := c.inner.Metrics()
	return ClusterMetrics{Write: m.Write, Query: m.Query}
}

// Metrics captures the index's latency histograms.
func (ix *Index) Metrics() IndexMetrics {
	m := IndexMetrics{
		Query: ix.queryLatency.Snapshot(),
		Merge: ix.inner.MergeSnapshot(),
	}
	ix.mu.RLock()
	logs := ix.logs
	ix.mu.RUnlock()
	for _, l := range logs {
		lm := l.Metrics()
		m.WALAppend.Merge(lm.Append.Snapshot())
		fs := lm.Fsync.Snapshot()
		m.WALFsync.Merge(fs)
		m.WALFsyncs += int64(fs.Count)
		m.WALCommitWait.Merge(lm.CommitWait.Snapshot())
		m.WALBatch.Merge(lm.Batch.Snapshot())
		m.WALGroupCommit.Merge(lm.GroupCommit.Snapshot())
		m.WALRecords += lm.Records.Load()
	}
	return m
}
