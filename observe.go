package vsmartjoin

import "vsmartjoin/internal/metrics"

// LatencySummary is the JSON-friendly digest of a latency histogram:
// the count and the mean/p50/p99/p999 in nanoseconds. Percentiles are
// extracted from log-spaced fixed buckets (internal/metrics), so each
// is accurate to about ±9% — distribution shape, not an exact order
// statistic. A zero Count means the summary is empty and the other
// fields are 0.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
}

// summarize digests a histogram snapshot into the public form.
func summarize(s metrics.Snapshot) LatencySummary {
	return LatencySummary{
		Count:  s.Count,
		MeanNs: s.Mean(),
		P50Ns:  s.Quantile(0.50),
		P99Ns:  s.Quantile(0.99),
		P999Ns: s.Quantile(0.999),
	}
}

// IndexMetrics is the full-resolution capture of an Index's latency
// histograms — what the /metrics endpoint (internal/httpd) renders as
// Prometheus bucket series. IndexStats carries the same distributions
// digested to LatencySummary; this form keeps every bucket so an
// external aggregator can merge distributions across processes.
type IndexMetrics struct {
	// Query times uncached public queries (threshold, entity, top-k)
	// end to end; cache hits are counted in IndexStats but not timed.
	Query metrics.Snapshot
	// Merge is the cross-shard merge step of multi-shard fan-outs.
	Merge metrics.Snapshot
	// WALAppend and WALFsync are durability stalls, merged across the
	// per-shard logs; both are empty for a volatile index.
	WALAppend metrics.Snapshot
	WALFsync  metrics.Snapshot
}

// ClusterMetrics is the full-resolution capture of a Cluster router's
// latency histograms — the /metrics counterpart of the digests in
// ClusterStats.
type ClusterMetrics struct {
	// Write times quorum writes to their decision point; Query times
	// scatter-gather queries end to end.
	Write metrics.Snapshot
	Query metrics.Snapshot
}

// Metrics captures the router's latency histograms.
func (c *Cluster) Metrics() ClusterMetrics {
	m := c.inner.Metrics()
	return ClusterMetrics{Write: m.Write, Query: m.Query}
}

// Metrics captures the index's latency histograms.
func (ix *Index) Metrics() IndexMetrics {
	m := IndexMetrics{
		Query: ix.queryLatency.Snapshot(),
		Merge: ix.inner.MergeSnapshot(),
	}
	ix.mu.RLock()
	logs := ix.logs
	ix.mu.RUnlock()
	for _, l := range logs {
		lm := l.Metrics()
		m.WALAppend.Merge(lm.Append.Snapshot())
		m.WALFsync.Merge(lm.Fsync.Snapshot())
	}
	return m
}
