package vsmartjoin_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"vsmartjoin"
	"vsmartjoin/internal/httpd"
)

// BenchmarkClusterQuery measures the router's scatter-gather threshold
// query against in-process node daemons: 1 vs 3 partitions, with
// hedging disabled vs armed (healthy nodes, so the hedge timer is pure
// overhead — the price of the tail-latency insurance, not its payout).
func BenchmarkClusterQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const entities = 3000
	corpus := make([]map[string]uint32, entities)
	for i := range corpus {
		m := make(map[string]uint32)
		for j, k := 0, 3+rng.Intn(8); j < k; j++ {
			m[fmt.Sprintf("w%d", rng.Intn(400))] = uint32(1 + rng.Intn(4))
		}
		corpus[i] = m
	}
	probes := corpus[:64]

	for _, partitions := range []int{1, 3} {
		// One node per partition, bulk-loaded through /bulk-free direct
		// Index adds (routing mirrors the writer's partition hash).
		var topo [][]string
		for p := 0; p < partitions; p++ {
			ix, err := vsmartjoin.NewIndex(vsmartjoin.IndexOptions{Measure: "ruzicka"})
			if err != nil {
				b.Fatal(err)
			}
			for i, m := range corpus {
				name := fmt.Sprintf("e%05d", i)
				if vsmartjoin.PartitionOfEntity(name, partitions) != p {
					continue
				}
				if err := ix.Add(name, m); err != nil {
					b.Fatal(err)
				}
			}
			ts := httptest.NewServer(httpd.NewNode(ix, httpd.Options{}))
			b.Cleanup(ts.Close)
			topo = append(topo, []string{ts.URL})
		}
		for _, hedge := range []time.Duration{-1, 100 * time.Millisecond} {
			name := fmt.Sprintf("nodes=%d/hedge=off", partitions)
			if hedge > 0 {
				name = fmt.Sprintf("nodes=%d/hedge=%s", partitions, hedge)
			}
			c, err := vsmartjoin.NewCluster(vsmartjoin.ClusterOptions{
				Nodes: topo, HedgeAfter: hedge, HealthEvery: -1, RepairEvery: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Close)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := c.QueryThreshold(probes[i%len(probes)], 0.5); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
